"""Gateway semantics: batching, coalescing, overlap, admission, metrics.

The contracts under test, each against the layers below rather than mocks:

* **Sequential equivalence** — an interleaved delta/infer sequence issued
  through the gateway (awaited in order) returns results bit-identical to
  the same sequence issued directly against a bare ``SessionPool`` (pregel;
  1e-9 on mapreduce, whose batch shapes change BLAS accumulation order).
  The suite runs under whatever executor ``$REPRO_EXECUTOR`` selects, so the
  CI matrix covers both ``serial`` and ``process``.
* **Batching** — N concurrent same-mode requests for one tenant are served
  by one plan-cache-hit execution (every waiter receives the same result).
* **Overlap** — a delta submitted while a tick is executing is *not* seen by
  that tick; it lands in the next tick's one coalesced flush.
* **Admission** — a request beyond ``max_queue_depth`` raises ``Overloaded``
  with a positive ``retry_after`` and provably leaves pool state untouched.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GatewayConfig,
    GraphDelta,
    InferenceConfig,
    SessionPool,
    StrategyConfig,
)
from repro.serving import Overloaded, ServingGateway

FEATURE_DIM = 8
NUM_CLASSES = 4


def make_graph(seed: int, num_nodes: int = 300):
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=4.0, skew="out",
                          feature_dim=FEATURE_DIM, num_classes=NUM_CLASSES,
                          seed=seed)


def make_config(backend: str = "pregel") -> InferenceConfig:
    return InferenceConfig(backend=backend, num_workers=4,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True,
                                                     hub_threshold_override=20))


def make_model():
    return build_model("gcn", FEATURE_DIM, 16, NUM_CLASSES, num_layers=2, seed=0)


def random_ops(rng: np.random.Generator, graph, num_ops: int):
    """An interleaved tenant stream: feature deltas, edge churn, infers."""
    num_nodes = graph.num_nodes
    num_edges = graph.num_edges          # tracks the virtual post-delta count
    ops = []
    for _ in range(num_ops):
        kind = rng.choice(["feature", "edges", "infer", "infer_incr"],
                          p=[0.35, 0.15, 0.3, 0.2])
        if kind == "feature":
            size = int(rng.integers(1, 8))
            ids = rng.choice(num_nodes, size=size, replace=False)
            ops.append(("delta", GraphDelta(
                node_ids=ids,
                node_features=rng.standard_normal((size, FEATURE_DIM)))))
        elif kind == "edges":
            add = int(rng.integers(1, 5))
            remove = min(int(rng.integers(0, 3)), num_edges - 1)
            removed = (rng.choice(num_edges, size=remove, replace=False)
                       if remove else None)
            ops.append(("delta", GraphDelta(
                added_src=rng.integers(0, num_nodes, size=add),
                added_dst=rng.integers(0, num_nodes, size=add),
                removed_edge_ids=removed)))
            num_edges += add - remove
        elif kind == "infer":
            ops.append(("infer", "full"))
        else:
            ops.append(("infer", "incremental"))
    ops.append(("infer", "full"))        # always end on a comparable result
    return ops


async def replay_through_gateway(gateway, tenant_id, ops):
    results = []
    for op, payload in ops:
        if op == "delta":
            await gateway.submit_delta(tenant_id, payload)
        else:
            results.append(await gateway.infer(tenant_id, mode=payload))
    return results


def replay_through_pool(pool, graph, ops):
    results = []
    for op, payload in ops:
        if op == "delta":
            pool.apply_delta(graph, payload, defer=True)
        else:
            results.append(pool.infer(graph, mode=payload))
    return results


class TestSequentialEquivalence:
    @pytest.mark.parametrize("backend,tolerance", [("pregel", 0.0),
                                                   ("mapreduce", 1e-9)])
    def test_gateway_matches_bare_pool(self, backend, tolerance):
        # Property test: the same interleaved per-tenant stream through the
        # gateway and through a bare pool must agree result for result.
        model = make_model()
        for seed in range(3):
            rng = np.random.default_rng(seed)
            gateway_graph = make_graph(seed + 40)
            pool_graph = make_graph(seed + 40)       # same content, own arrays
            ops = random_ops(rng, gateway_graph, num_ops=12)

            async def gateway_side():
                pool = SessionPool(model, make_config(backend), capacity=4)
                async with ServingGateway(pool) as gateway:
                    gateway.register("tenant", gateway_graph)
                    return await replay_through_gateway(gateway, "tenant", ops)

            gateway_results = asyncio.run(gateway_side())
            bare_pool = SessionPool(model, make_config(backend), capacity=4)
            pool_results = replay_through_pool(bare_pool, pool_graph, ops)

            assert len(gateway_results) == len(pool_results)
            for index, (via_gateway, via_pool) in enumerate(
                    zip(gateway_results, pool_results)):
                if tolerance == 0.0:
                    np.testing.assert_array_equal(
                        via_gateway.scores, via_pool.scores,
                        err_msg=f"seed {seed}, infer #{index}")
                else:
                    np.testing.assert_allclose(
                        via_gateway.scores, via_pool.scores, atol=tolerance,
                        err_msg=f"seed {seed}, infer #{index}")

    def test_multi_tenant_streams_stay_isolated(self):
        # Two tenants with different streams through ONE gateway/pool equal
        # their dedicated bare-pool replays.
        model = make_model()
        streams = {}
        for tenant, seed in (("a", 50), ("b", 51)):
            rng = np.random.default_rng(seed)
            graph = make_graph(seed)
            streams[tenant] = (graph, make_graph(seed),
                              random_ops(rng, graph, num_ops=8))

        async def gateway_side():
            pool = SessionPool(model, make_config(), capacity=4)
            async with ServingGateway(pool) as gateway:
                for tenant, (graph, _, _) in streams.items():
                    gateway.register(tenant, graph)
                # Interleave the two tenants' replays concurrently.
                return await asyncio.gather(*(
                    replay_through_gateway(gateway, tenant, ops)
                    for tenant, (_, _, ops) in streams.items()))

        gateway_results = dict(zip(streams, asyncio.run(gateway_side())))
        for tenant, (_, reference_graph, ops) in streams.items():
            reference_pool = SessionPool(model, make_config(), capacity=4)
            reference = replay_through_pool(reference_pool, reference_graph, ops)
            for via_gateway, via_pool in zip(gateway_results[tenant], reference):
                np.testing.assert_array_equal(via_gateway.scores, via_pool.scores)


class TestBatching:
    def test_concurrent_requests_served_by_one_execution(self):
        model = make_model()
        graph = make_graph(60)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")         # plan off the hot path
                session = pool.session_for(graph)
                runs_before = session.num_runs
                results = await asyncio.gather(*(gateway.infer("tenant")
                                                 for _ in range(10)))
                stats = gateway.tenant_stats("tenant")
                return session.num_runs - runs_before, results, stats

        executions, results, stats = asyncio.run(run())
        # All ten admitted before the first tick could drain the queue, so
        # they collapse into one (at most two, if the loop squeezed a tick in
        # between admissions) plan-cache-hit executions.
        assert executions <= 2
        assert stats.requests == 10 and stats.ticks == executions
        # Each tick produces one shared InferenceResult object for its batch.
        assert len({id(result) for result in results}) == executions
        assert stats.batching_factor >= 5.0

    def test_mode_change_splits_the_batch(self):
        model = make_model()
        graph = make_graph(61)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                modes = ["full", "full", "incremental", "incremental", "full"]
                await asyncio.gather(*(gateway.infer("tenant", mode=mode)
                                       for mode in modes))
                return gateway.tenant_stats("tenant")

        stats = asyncio.run(run())
        # FIFO same-mode prefixes: full x2, incremental x2, full — at most 3
        # ticks (fewer only if admissions straddled a running tick).
        assert 1 <= stats.ticks <= 3
        assert stats.requests == 5


class _GatedBackend:
    """Delegating backend spy whose execute() blocks until released."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.entered = threading.Event()   # set when an execute begins
        self.release = threading.Event()   # execute waits for this

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        self.entered.set()
        assert self.release.wait(timeout=30), "gated execute never released"
        return self._inner.execute(plan, metrics)

    def apply_delta(self, plan, delta):
        return self._inner.apply_delta(plan, delta)

    def execute_incremental(self, plan, metrics, feature_dirty, topo_dirty):
        return self._inner.execute_incremental(plan, metrics,
                                               feature_dirty, topo_dirty)


class TestOverlap:
    def test_delta_submitted_mid_tick_lands_in_next_tick(self):
        # Hold tick N open with a gated backend, submit a delta while it
        # executes, and check: tick N serves pre-delta scores, tick N+1
        # serves post-delta scores — the coalesced next-flush contract.
        model = make_model()
        graph = make_graph(62)
        reference_before = make_graph(62)
        reference_after = make_graph(62)
        rng = np.random.default_rng(3)
        ids = rng.choice(graph.num_nodes, size=6, replace=False)
        rows = rng.standard_normal((6, FEATURE_DIM))
        delta = GraphDelta(node_ids=ids, node_features=rows)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                session = pool.session_for(graph)
                gate = _GatedBackend(session.backend)
                session.backend = gate

                tick_n = asyncio.create_task(gateway.infer("tenant"))
                # Wait (off-loop) until tick N is provably executing.
                await asyncio.get_running_loop().run_in_executor(
                    None, gate.entered.wait, 30)
                # The delta applies *while* tick N runs — deferred buffering
                # may overlap execution; it must not be visible to tick N.
                await gateway.submit_delta("tenant", delta)
                assert session.num_pending_deltas == 1
                gate.release.set()
                before = await tick_n
                after = await gateway.infer("tenant")
                assert session.num_pending_deltas == 0
                return before, after

        before, after = asyncio.run(run())

        solo = SessionPool(model, make_config(), capacity=2)
        np.testing.assert_array_equal(before.scores,
                                      solo.infer(reference_before).scores)
        reference_after.node_features[ids] = rows
        solo_after = SessionPool(model, make_config(), capacity=2)
        np.testing.assert_array_equal(after.scores,
                                      solo_after.infer(reference_after).scores)
        assert not np.array_equal(before.scores, after.scores)


class TestAdmission:
    def test_overloaded_rejection_leaves_pool_untouched(self):
        model = make_model()
        graph = make_graph(63)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            config = GatewayConfig(max_queue_depth=2, max_batch=1)
            async with ServingGateway(pool, config) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                session = pool.session_for(graph)
                gate = _GatedBackend(session.backend)
                session.backend = gate

                # One executing + one queued fills depth 2 (max_batch=1 keeps
                # the second request queued instead of batched).
                in_flight = [asyncio.create_task(gateway.infer("tenant"))
                             for _ in range(2)]
                await asyncio.get_running_loop().run_in_executor(
                    None, gate.entered.wait, 30)
                stats_before = pool.stats
                sessions_before = pool.fingerprints()

                with pytest.raises(Overloaded) as excinfo:
                    await gateway.infer("tenant")

                # The rejected request touched no pool state.
                stats_after = pool.stats
                assert pool.fingerprints() == sessions_before
                assert (stats_after.hits, stats_after.misses,
                        stats_after.evictions) == (stats_before.hits,
                                                   stats_before.misses,
                                                   stats_before.evictions)
                gate.release.set()
                await asyncio.gather(*in_flight)
                return excinfo.value, gateway.tenant_stats("tenant")

        overloaded, stats = asyncio.run(run())
        assert overloaded.retry_after > 0
        assert overloaded.queue_depth == 2
        assert stats.rejections == 1
        assert stats.requests == 2          # the rejected one never admitted

    def test_queue_drains_and_admits_again(self):
        model = make_model()
        graph = make_graph(64)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            config = GatewayConfig(max_queue_depth=1, max_batch=1)
            async with ServingGateway(pool, config) as gateway:
                gateway.register("tenant", graph)
                first = await gateway.infer("tenant")     # drains immediately
                second = await gateway.infer("tenant")    # admitted again
                return first, second

        first, second = asyncio.run(run())
        np.testing.assert_array_equal(first.scores, second.scores)


class TestLifecycleAndMetrics:
    def test_unknown_tenant_and_double_registration(self):
        model = make_model()

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", make_graph(65))
                with pytest.raises(ValueError, match="already registered"):
                    gateway.register("tenant", make_graph(65))
                with pytest.raises(KeyError, match="unknown tenant"):
                    await gateway.infer("nobody")
                with pytest.raises(TypeError, match="Graph"):
                    gateway.register("tables", object())
                with pytest.raises(ValueError, match="mode"):
                    await gateway.infer("tenant", mode="sideways")

        asyncio.run(run())

    def test_closed_gateway_rejects_new_work(self):
        model = make_model()
        graph = make_graph(66)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            gateway = ServingGateway(pool)
            gateway.register("tenant", graph)
            result = await gateway.infer("tenant")
            await gateway.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await gateway.infer("tenant")
            with pytest.raises(RuntimeError, match="closed"):
                gateway.register("late", make_graph(67))
            return result

        assert asyncio.run(run()).scores.shape[0] == graph.num_nodes

    def test_snapshot_is_json_serialisable_and_consistent(self):
        model = make_model()

        async def run():
            pool = SessionPool(model, make_config(), capacity=4)
            async with ServingGateway(pool) as gateway:
                gateway.register("a", make_graph(68))
                gateway.register("b", make_graph(69))
                await gateway.map(["a", "b"])
                await gateway.submit_delta("a", GraphDelta(
                    node_ids=np.array([0, 1]),
                    node_features=np.zeros((2, FEATURE_DIM))))
                await gateway.infer("a", mode="incremental")
                return gateway.snapshot()

        snapshot = asyncio.run(run())
        payload = json.loads(json.dumps(snapshot.to_dict()))
        assert payload["requests"] == 3 and payload["deltas"] == 1
        assert payload["ticks"] >= 2
        assert payload["pool"]["hits"] + payload["pool"]["misses"] > 0
        assert 0.0 <= payload["p50_tick_seconds"] <= payload["p99_tick_seconds"]
        tenant_a = next(t for t in payload["tenants"] if t["tenant_id"] == "a")
        assert tenant_a["requests"] == 2 and tenant_a["deltas"] == 1
        # Percentiles come from the session's own measured latency samples.
        assert tenant_a["p50_tick_seconds"] > 0
        assert snapshot.describe().startswith("gateway:")


class TestFaultPaths:
    """Serving-tier failure paths: eviction races and overload hints."""

    def test_delta_submitted_after_eviction_still_lands(self):
        # Evicting the tenant's pooled session between requests must not
        # lose a subsequently submitted delta: apply_delta mirrors onto the
        # registered graph handle, so the re-prepared session sees it.
        model = make_model()
        graph = make_graph(70)
        reference = make_graph(70)
        rng = np.random.default_rng(17)
        ids = rng.choice(graph.num_nodes, size=5, replace=False)
        rows = rng.standard_normal((5, FEATURE_DIM))

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                assert pool.evict(graph)
                await gateway.submit_delta("tenant", GraphDelta(
                    node_ids=ids, node_features=rows))
                return await gateway.infer("tenant")

        result = asyncio.run(run())
        reference.node_features[ids] = rows
        solo = SessionPool(model, make_config(), capacity=2)
        np.testing.assert_array_equal(result.scores,
                                      solo.infer(reference).scores)

    def test_delta_stream_survives_racing_evictions(self):
        # Hammer the same race from a second thread: evictions fire
        # concurrently with submit_delta/infer traffic, and at the end the
        # tenant's scores must equal a never-evicted reference that applied
        # the identical delta sequence.
        model = make_model()
        graph = make_graph(71)
        reference = make_graph(71)
        rng = np.random.default_rng(23)
        deltas = []
        for _ in range(12):
            ids = rng.choice(graph.num_nodes, size=4, replace=False)
            deltas.append((ids, rng.standard_normal((4, FEATURE_DIM))))

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            loop = asyncio.get_running_loop()
            async with ServingGateway(pool) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                for index, (ids, rows) in enumerate(deltas):
                    evictor = loop.run_in_executor(None, pool.evict, graph)
                    await gateway.submit_delta("tenant", GraphDelta(
                        node_ids=ids, node_features=rows))
                    await evictor
                    if index % 3 == 2:
                        await gateway.infer("tenant")
                return await gateway.infer("tenant")

        result = asyncio.run(run())
        for ids, rows in deltas:
            reference.node_features[ids] = rows
        solo = SessionPool(model, make_config(), capacity=2)
        np.testing.assert_array_equal(result.scores,
                                      solo.infer(reference).scores)

    def test_retry_after_reflects_queue_depth_and_latency(self):
        # With latency history the hint is ceil(depth / max_batch) * mean
        # tick latency (the default floor is pinned tiny so the estimate,
        # not the fallback, is under test).
        model = make_model()
        graph = make_graph(72)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            config = GatewayConfig(max_queue_depth=2, max_batch=1,
                                   default_retry_after_seconds=1e-9)
            async with ServingGateway(pool, config) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")
                await gateway.infer("tenant")
                await gateway.infer("tenant")
                mean_before = gateway.tenant_stats("tenant").mean_tick_seconds
                assert mean_before > 0

                session = pool.session_for(graph)
                gate = _GatedBackend(session.backend)
                session.backend = gate
                in_flight = [asyncio.create_task(gateway.infer("tenant"))
                             for _ in range(2)]
                await asyncio.get_running_loop().run_in_executor(
                    None, gate.entered.wait, 30)
                with pytest.raises(Overloaded) as excinfo:
                    await gateway.infer("tenant")
                gate.release.set()
                await asyncio.gather(*in_flight)
                return excinfo.value, mean_before

        overloaded, mean_before = asyncio.run(run())
        # depth 2, max_batch 1 -> two ticks to drain, each ~mean_before.
        assert overloaded.retry_after == pytest.approx(2 * mean_before)
        assert overloaded.queue_depth == 2

    def test_retry_after_falls_back_before_any_history(self):
        model = make_model()
        graph = make_graph(73)

        async def run():
            pool = SessionPool(model, make_config(), capacity=2)
            config = GatewayConfig(max_queue_depth=1, max_batch=1,
                                   default_retry_after_seconds=0.25)
            async with ServingGateway(pool, config) as gateway:
                gateway.register("tenant", graph)
                await gateway.warm("tenant")      # warms the plan, no sample
                session = pool.session_for(graph)
                gate = _GatedBackend(session.backend)
                session.backend = gate
                blocked = asyncio.create_task(gateway.infer("tenant"))
                await asyncio.get_running_loop().run_in_executor(
                    None, gate.entered.wait, 30)
                with pytest.raises(Overloaded) as excinfo:
                    await gateway.infer("tenant")
                gate.release.set()
                await blocked
                return excinfo.value

        overloaded = asyncio.run(run())
        assert overloaded.retry_after == pytest.approx(0.25)
