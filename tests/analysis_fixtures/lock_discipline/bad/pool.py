"""Regression fixture: the fcf99ca shape -- slow work under the pool lock.

Both methods hold ``self._lock`` across a slow call, exactly the shape the
PR-6 review found in ``SessionPool`` (prepare and close under the single
global lock).  The lock-discipline rule must flag both call sites.
"""


class SessionPool:
    def lookup(self, graph):
        with self._lock:
            entry = self._entries.get(graph)
            if entry is None:
                session = self._make_session(graph)
                session.prepare()
                self._entries[graph] = session
            return self._entries[graph]

    def evict_one(self, fingerprint):
        with self._lock:
            session = self._entries.pop(fingerprint)
            session.close()
