"""Counter-fixture: the post-fcf99ca shape -- slow work outside the lock.

The lock guards only cheap bookkeeping; prepare/close happen after release.
A callback *defined* under the lock but executed later is also fine (nested
defs run outside the lexical lock scope).
"""


class SessionPool:
    def lookup(self, graph):
        with self._lock:
            session = self._entries.get(graph)
        if session is None:
            session = self._make_session(graph)
            session.prepare()
            with self._lock:
                self._entries[graph] = session
        return session

    def evict_one(self, fingerprint):
        with self._lock:
            session = self._entries.pop(fingerprint)

            def deferred():
                session.close()

            self._pending.append(deferred)
        return session
