"""Counter-fixture: the three acceptable broad-except shapes."""


def reraises(task):
    try:
        task()
    except Exception:
        raise


def justified(task):
    try:
        task()
    # Best effort by design: teardown must not mask the original failure.
    except Exception:
        pass


def justified_inline(task):
    try:
        task()
    except Exception:  # the probe's verdict is the point; any failure means no
        return False


def narrow(task):
    try:
        task()
    except ValueError:
        return None
