"""Fixture: broad handlers that neither re-raise nor justify themselves."""


def swallow(task):
    try:
        task()
    except Exception:
        pass


def swallow_bare(task):
    try:
        task()
    except:
        return None


def swallow_tuple(task):
    try:
        task()
    except (ValueError, Exception) as exc:
        return exc
