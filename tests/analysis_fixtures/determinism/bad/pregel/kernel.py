"""Fixture: every determinism hazard the rule knows, one per line."""

import random
import time
from datetime import datetime

import numpy as np


def accumulate(values, scale):
    started = time.time()
    stamp = datetime.now()
    total = 0.0
    for value in {1.0, 2.0, 3.0}:
        total += value
    for value in set(values):
        total -= value
    jitter = np.random.random()
    rng = np.random.default_rng()
    noise = random.random()
    scale(time.perf_counter())
    return total + jitter + noise, started, stamp, rng
