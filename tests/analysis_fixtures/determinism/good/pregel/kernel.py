"""Counter-fixture: the sanctioned shapes of each determinism hazard."""

import time

import numpy as np


def accumulate(values, rng, record):
    started = time.perf_counter()
    total = 0.0
    for value in sorted(set(values)):
        total += value
    noise = rng.normal()
    seeded = np.random.default_rng(1234)
    record(measured_seconds=time.perf_counter() - started)
    return total + noise + seeded.random()
