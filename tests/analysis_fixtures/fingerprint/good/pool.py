"""Counter-fixture: fingerprinting under the same lock the mirror holds."""


class SessionPool:
    def lookup(self, graph):
        with self._lock:
            key = graph_fingerprint(graph)
            return self._entries[key]
