"""Fixture: the fingerprint-tear race -- hashing a tenant graph unlocked.

``graph_fingerprint(graph)`` runs outside the pool lock, so a concurrent
``apply_delta`` can mutate the arrays mid-hash and corrupt the cache key.
"""


class SessionPool:
    def lookup(self, graph):
        key = graph_fingerprint(graph)
        with self._lock:
            return self._entries[key]
