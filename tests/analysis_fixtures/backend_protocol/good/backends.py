"""Counter-fixture: a protocol-complete registered backend."""


@register_backend("complete")
class CompleteBackend:
    def default_cluster(self, num_workers):
        return None

    def plan(self, model, graph, config):
        return None

    def execute(self, plan, metrics):
        return None

    def apply_delta(self, plan, delta):
        return plan

    def execute_incremental(self, plan, metrics, feature_dirty, topo_dirty):
        return None

    def describe(self):
        return "complete"
