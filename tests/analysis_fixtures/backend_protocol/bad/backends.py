"""Fixture: a registered backend with every protocol defect the rule knows.

Missing required methods, a typo'd optional hook (the silent-degradation
bug: getattr discovery never errors on ``apply_deltas``), and a drifted
``execute_incremental`` signature.
"""


@register_backend("broken")
class BrokenBackend:
    def plan(self, model, graph, config):
        return None

    def apply_deltas(self, plan, delta):
        return plan

    def execute_incremental(self, plan, metrics, dirty):
        return None
