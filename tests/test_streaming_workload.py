"""Workload generator contracts: reproducibility, validity, scenarios.

The trace is the soak harness's ground truth, so it has to be (a) **byte
reproducible** from its seed, (b) **valid** — every ``removed_edge_ids``
position must be legal at the moment its delta applies, both when deltas are
applied eagerly one by one and when they coalesce through a
:class:`~repro.inference.delta.DeltaBuffer` — and (c) faithful to its
scenario knobs (tenant skew, temporal snapshots, sliding windows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import powerlaw_graph
from repro.graph.graph import Graph
from repro.inference.delta import DeltaBuffer, apply_delta_to_graph
from repro.streaming.workload import (
    DELTA,
    INFER,
    SNAPSHOT,
    WorkloadConfig,
    generate_trace,
)

FEATURE_DIM = 6


def make_graphs(config: WorkloadConfig, num_nodes: int = 120):
    return [powerlaw_graph(num_nodes=num_nodes, avg_degree=4.0, skew="out",
                           feature_dim=FEATURE_DIM, num_classes=3,
                           seed=900 + tenant)
            for tenant in range(config.tenants)]


def edge_featured_graph(num_nodes: int = 40, num_edges: int = 60) -> Graph:
    rng = np.random.default_rng(5)
    return Graph(src=rng.integers(0, num_nodes, size=num_edges),
                 dst=rng.integers(0, num_nodes, size=num_edges),
                 node_features=rng.standard_normal((num_nodes, FEATURE_DIM)),
                 edge_features=rng.standard_normal((num_edges, 3)),
                 num_nodes=num_nodes)


def replay_eagerly(trace, graphs):
    """Apply every delta in trace order directly onto graph copies."""
    for event in trace.events:
        if event.kind == DELTA:
            apply_delta_to_graph(graphs[event.tenant], event.delta)


class TestReproducibility:
    def test_same_seed_same_trace(self):
        config = WorkloadConfig(seed=21, ticks=12, tenants=3,
                                deltas_per_tick=3, snapshot_every=4,
                                sliding_window=3)
        first = generate_trace(make_graphs(config), config)
        second = generate_trace(make_graphs(config), config)
        assert first.digest == second.digest
        assert len(first.events) == len(second.events)
        for left, right in zip(first.events, second.events):
            assert (left.tick, left.tenant, left.kind, left.mode) == (
                right.tick, right.tenant, right.kind, right.mode)

    def test_different_seed_different_stream(self):
        base = WorkloadConfig(seed=21, ticks=12, tenants=2, deltas_per_tick=3)
        other = WorkloadConfig(seed=22, ticks=12, tenants=2, deltas_per_tick=3)
        assert (generate_trace(make_graphs(base), base).digest
                != generate_trace(make_graphs(other), other).digest)


class TestValidity:
    @pytest.mark.parametrize("sliding_window", [0, 3])
    def test_eager_and_coalesced_application_agree(self, sliding_window):
        # The generator's virtual edge-list model must match both consumers:
        # eager per-delta application and DeltaBuffer coalescing (one merged
        # flush per inferred tick) must produce byte-identical graph arrays.
        config = WorkloadConfig(seed=33, ticks=15, tenants=2,
                                deltas_per_tick=3, feature_fraction=0.4,
                                sliding_window=sliding_window)
        graphs = make_graphs(config)
        eager = make_graphs(config)
        coalesced = make_graphs(config)
        trace = generate_trace(graphs, config)

        replay_eagerly(trace, eager)

        buffers = [DeltaBuffer(graph) for graph in coalesced]
        for event in trace.events:
            if event.kind == DELTA:
                buffers[event.tenant].add(event.delta)
        for graph, buffer in zip(coalesced, buffers):
            apply_delta_to_graph(graph, buffer.merge())

        for tenant, (left, right) in enumerate(zip(eager, coalesced)):
            np.testing.assert_array_equal(left.src, right.src,
                                          err_msg=f"tenant {tenant} src")
            np.testing.assert_array_equal(left.dst, right.dst,
                                          err_msg=f"tenant {tenant} dst")
            np.testing.assert_array_equal(left.node_features,
                                          right.node_features,
                                          err_msg=f"tenant {tenant} features")

    def test_edge_featured_graphs_get_edge_feature_rows(self):
        config = WorkloadConfig(seed=4, ticks=8, tenants=1, deltas_per_tick=2,
                                feature_fraction=0.0)
        graph = edge_featured_graph()
        trace = generate_trace([graph], config)
        adds = [event for event in trace.events
                if event.kind == DELTA and event.delta.added_src is not None]
        assert adds, "edge-churn trace emitted no edge additions"
        for event in adds:
            assert event.delta.added_edge_features is not None
        replay_eagerly(trace, [graph])           # stays valid end to end
        assert graph.edge_features.shape[0] == graph.num_edges

    def test_removals_respect_the_min_edges_floor(self):
        config = WorkloadConfig(seed=9, ticks=40, tenants=1, deltas_per_tick=2,
                                feature_fraction=0.0, max_edges_added=1,
                                max_edges_removed=6, min_edges=30)
        graphs = make_graphs(config, num_nodes=40)
        trace = generate_trace(graphs, config)
        graph = make_graphs(config, num_nodes=40)[0]
        for event in trace.events:
            if event.kind == DELTA:
                apply_delta_to_graph(graph, event.delta)
                assert graph.num_edges >= config.min_edges


class TestScenarios:
    def test_tenant_skew_concentrates_churn(self):
        config = WorkloadConfig(seed=14, ticks=60, tenants=4,
                                deltas_per_tick=4, tenant_skew=2.0)
        trace = generate_trace(make_graphs(config), config)
        per_tenant = [0] * config.tenants
        for event in trace.events:
            if event.kind == DELTA:
                per_tenant[event.tenant] += 1
        assert per_tenant[0] > per_tenant[-1] * 2

    def test_snapshot_and_infer_cadence(self):
        config = WorkloadConfig(seed=3, ticks=12, tenants=2, infer_every=3,
                                snapshot_every=4)
        trace = generate_trace(make_graphs(config), config)
        assert trace.count(INFER) == 2 * (12 // 3)
        assert trace.count(SNAPSHOT) == 2 * (12 // 4)
        modes = {event.mode for event in trace.events
                 if event.kind == SNAPSHOT}
        assert modes == {"full"}          # snapshots are always comparable

    def test_sliding_window_bounds_the_edge_count(self):
        # With churn off, only window edges accrete — and every appended edge
        # expires after `sliding_window` ticks, so the live edge count stays
        # within base + window * edges_per_tick at every step.
        config = WorkloadConfig(seed=8, ticks=30, tenants=1,
                                deltas_per_tick=0, sliding_window=4,
                                window_edges_per_tick=3)
        graphs = make_graphs(config)
        base_edges = graphs[0].num_edges
        trace = generate_trace(graphs, config)
        graph = make_graphs(config)[0]
        ceiling = base_edges + config.sliding_window * config.window_edges_per_tick
        saw_expiry = False
        for event in trace.events:
            if event.kind != DELTA:
                continue
            if (event.delta.removed_edge_ids is not None
                    and event.delta.removed_edge_ids.size):
                saw_expiry = True
            apply_delta_to_graph(graph, event.delta)
            assert graph.num_edges <= ceiling
        assert saw_expiry, "the window never expired an edge"
        # Steady state: exactly window * per-tick edges live above the base.
        assert graph.num_edges == ceiling

    def test_trace_describe_and_per_tick(self):
        config = WorkloadConfig(seed=2, ticks=5, tenants=1, deltas_per_tick=1)
        trace = generate_trace(make_graphs(config), config)
        assert "digest" in trace.describe()
        assert sum(len(trace.per_tick(t)) for t in range(5)) == len(trace.events)


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="ticks"):
            WorkloadConfig(ticks=0)
        with pytest.raises(ValueError, match="tenants"):
            WorkloadConfig(tenants=0)
        with pytest.raises(ValueError, match="feature_fraction"):
            WorkloadConfig(feature_fraction=1.5)
        with pytest.raises(ValueError, match="infer_every"):
            WorkloadConfig(infer_every=0)

    def test_generate_rejects_mismatched_tenancy(self):
        config = WorkloadConfig(seed=1, ticks=2, tenants=2)
        with pytest.raises(ValueError, match="tenant"):
            generate_trace(make_graphs(WorkloadConfig(tenants=1)), config)

    def test_generate_requires_node_features(self):
        config = WorkloadConfig(seed=1, ticks=2, tenants=1)
        bare = Graph(src=np.array([0, 1]), dst=np.array([1, 0]),
                     node_features=None, num_nodes=2)
        with pytest.raises(ValueError, match="node features"):
            generate_trace([bare], config)
