"""Tests for model signature export / save / load and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.gnn.signature import ModelSignature, export_signature, load_signature
from repro.graph.generators import labeled_community_graph
from repro.tensor.tensor import Tensor, no_grad
from repro.training.metrics import evaluate_multi_label, evaluate_single_label, prediction_labels
from repro.training.trainer import TrainConfig, Trainer


class TestSignature:
    @pytest.mark.parametrize("arch", ["sage", "gat", "gcn"])
    def test_export_records_layers(self, arch):
        model = build_model(arch, 8, 16, 3, num_layers=2)
        signature = export_signature(model)
        assert len(signature.layers) == 2
        assert signature.feature_dim == 8
        assert signature.has_head

    def test_partial_flag_recorded(self):
        sage_sig = export_signature(build_model("sage", 8, 16, 3))
        gat_sig = export_signature(build_model("gat", 8, 16, 3))
        assert all(layer.supports_partial_gather for layer in sage_sig.layers)
        assert not any(layer.supports_partial_gather for layer in gat_sig.layers)

    def test_annotations_in_signature(self):
        signature = export_signature(build_model("sage", 8, 16, 3))
        annotations = signature.layers[0].annotations
        assert annotations["gather"]["partial"] is True
        assert annotations["apply_node"]["stage"] == "apply_node"

    @pytest.mark.parametrize("arch", ["sage", "gat", "gcn"])
    def test_rebuilt_model_reproduces_outputs(self, arch):
        rng = np.random.default_rng(0)
        model = build_model(arch, 8, 16, 3, num_layers=2, seed=4)
        signature = export_signature(model)
        rebuilt = signature.build_model()
        state = rng.normal(size=(15, 8))
        src = rng.integers(0, 15, size=40)
        dst = rng.integers(0, 15, size=40)
        with no_grad():
            original = model.forward(Tensor(state), src, dst, num_nodes=15).data
            recovered = rebuilt.forward(Tensor(state), src, dst, num_nodes=15).data
        np.testing.assert_allclose(recovered, original, atol=1e-12)

    def test_save_and_load_roundtrip(self, tmp_path):
        model = build_model("sage", 6, 12, 4, num_layers=2, seed=1)
        signature = export_signature(model)
        directory = str(tmp_path / "model")
        signature.save(directory)
        loaded = load_signature(directory)
        assert loaded.feature_dim == 6
        assert len(loaded.layers) == 2
        for name, values in signature.parameters.items():
            np.testing.assert_allclose(loaded.parameters[name], values)

    def test_loaded_signature_builds_equivalent_model(self, tmp_path):
        model = build_model("gat", 5, 8, 2, num_layers=2, seed=2)
        directory = str(tmp_path / "gat_model")
        export_signature(model).save(directory)
        rebuilt = load_signature(directory).build_model()
        rng = np.random.default_rng(3)
        state = rng.normal(size=(10, 5))
        src = rng.integers(0, 10, size=20)
        dst = rng.integers(0, 10, size=20)
        with no_grad():
            np.testing.assert_allclose(
                rebuilt.forward(Tensor(state), src, dst, num_nodes=10).data,
                model.forward(Tensor(state), src, dst, num_nodes=10).data, atol=1e-12)

    def test_signature_message_dims(self):
        signature = export_signature(build_model("gat", 8, 16, 3, heads=4))
        layer = signature.layers[0]
        assert layer.message_dim == layer.config["heads"] * layer.config["out_dim"] + layer.config["heads"]


class TestTrainer:
    @pytest.fixture(scope="class")
    def train_graph(self):
        return labeled_community_graph(num_nodes=250, num_classes=3, feature_dim=10,
                                       avg_degree=6.0, seed=21)

    def test_training_reduces_loss(self, train_graph):
        model = build_model("sage", 10, 16, 3, seed=0)
        trainer = Trainer(model, train_graph, TrainConfig(num_epochs=4, batch_size=32, fanout=5))
        result = trainer.fit(np.arange(100))
        assert result.losses[-1] < result.losses[0]

    def test_training_improves_over_random_accuracy(self, train_graph):
        model = build_model("sage", 10, 16, 3, seed=0)
        trainer = Trainer(model, train_graph, TrainConfig(num_epochs=5, batch_size=32, fanout=5))
        trainer.fit(np.arange(120))
        metrics = trainer.evaluate(np.arange(120, 200))
        assert metrics["accuracy"] > 0.5

    def test_evaluate_is_deterministic(self, train_graph):
        model = build_model("sage", 10, 16, 3, seed=0)
        trainer = Trainer(model, train_graph, TrainConfig(num_epochs=1, batch_size=32, fanout=5))
        trainer.fit(np.arange(60))
        first = trainer.evaluate(np.arange(100, 150))
        second = trainer.evaluate(np.arange(100, 150))
        assert first == second

    def test_multilabel_training(self):
        graph = labeled_community_graph(num_nodes=150, num_classes=8, feature_dim=6,
                                        multilabel=True, seed=2)
        model = build_model("sage", 6, 12, 8, seed=0)
        trainer = Trainer(model, graph, TrainConfig(num_epochs=2, batch_size=32, fanout=5,
                                                    multilabel=True))
        result = trainer.fit(np.arange(80))
        metrics = trainer.evaluate(np.arange(80, 120))
        assert "micro_f1" in metrics
        assert result.losses

    def test_unlabeled_graph_rejected(self):
        from repro.graph.graph import Graph

        graph = Graph(np.array([0]), np.array([1]), node_features=np.zeros((2, 4)), num_nodes=2)
        model = build_model("sage", 4, 8, 2)
        with pytest.raises(ValueError):
            Trainer(model, graph)

    def test_full_neighbor_training_config(self, train_graph):
        model = build_model("gcn", 10, 12, 3, seed=0)
        trainer = Trainer(model, train_graph, TrainConfig(num_epochs=1, batch_size=64, fanout=None))
        result = trainer.fit(np.arange(64))
        assert len(result.losses) == 1

    def test_history_records_epochs(self, train_graph):
        model = build_model("sage", 10, 8, 3, seed=0)
        trainer = Trainer(model, train_graph, TrainConfig(num_epochs=3, batch_size=32, fanout=5))
        result = trainer.fit(np.arange(50))
        assert [entry["epoch"] for entry in result.history] == [0, 1, 2]


class TestMetrics:
    def test_single_label_metrics(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        labels = np.array([1, 0])
        assert evaluate_single_label(logits, labels)["accuracy"] == 1.0

    def test_multi_label_metrics(self):
        logits = np.array([[1.0, -1.0], [1.0, 1.0]])
        targets = np.array([[1, 0], [1, 1]])
        assert evaluate_multi_label(logits, targets)["micro_f1"] == 1.0

    def test_prediction_labels(self):
        logits = np.array([[0.2, 0.7], [-0.5, -0.1]])
        np.testing.assert_array_equal(prediction_labels(logits), [1, 1])
        np.testing.assert_array_equal(prediction_labels(logits, multilabel=True),
                                      [[1, 1], [0, 0]])
