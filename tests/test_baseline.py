"""Tests for the traditional (k-hop sampling) inference baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.graph_store import DistributedGraphStore
from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.cluster.resources import ClusterSpec, WorkerSpec
from repro.gnn.model import build_model
from repro.graph.generators import labeled_community_graph
from repro.inference import InferTurbo, InferenceConfig


@pytest.fixture(scope="module")
def graph():
    return labeled_community_graph(num_nodes=220, num_classes=3, feature_dim=8,
                                   avg_degree=6.0, seed=17)


@pytest.fixture(scope="module")
def model(graph):
    return build_model("sage", graph.feature_dim, 16, 3, num_layers=2, seed=3)


class TestGraphStore:
    def test_query_returns_subgraph_and_counts_bytes(self, graph):
        store = DistributedGraphStore(graph, num_store_workers=3)
        subgraph = store.query_khop([0, 1, 2], num_hops=2)
        assert subgraph.num_nodes >= 3
        assert store.num_queries == 1
        assert store.metrics.total("bytes_out") > 0

    def test_subgraph_bytes_grow_with_size(self, graph):
        store = DistributedGraphStore(graph)
        small = store.query_khop([0], num_hops=1)
        large = store.query_khop(list(range(30)), num_hops=2)
        assert store.subgraph_bytes(large) > store.subgraph_bytes(small)

    def test_invalid_store_workers(self, graph):
        with pytest.raises(ValueError):
            DistributedGraphStore(graph, num_store_workers=0)


class TestTraditionalPipeline:
    def test_full_neighborhood_matches_inferturbo(self, graph, model):
        """Without sampling, the traditional pipeline and InferTurbo agree exactly."""
        targets = np.arange(60)
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=4, fanout=None))
        traditional = pipeline.run(graph, targets=targets, compute_scores=True)
        inferturbo = InferTurbo(model, InferenceConfig(num_workers=4)).run(graph)
        np.testing.assert_allclose(traditional.scores[targets], inferturbo.scores[targets],
                                   atol=1e-9)

    def test_sampling_changes_predictions_between_seeds(self, graph, model):
        targets = np.arange(80)
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=4, fanout=2))
        first = pipeline.run(graph, targets=targets, compute_scores=True, seed=1)
        second = pipeline.run(graph, targets=targets, compute_scores=True, seed=2)
        assert not np.allclose(first.scores[targets], second.scores[targets])

    def test_full_neighborhood_is_deterministic(self, graph, model):
        targets = np.arange(40)
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=4, fanout=None))
        first = pipeline.run(graph, targets=targets, compute_scores=True, seed=1)
        second = pipeline.run(graph, targets=targets, compute_scores=True, seed=2)
        np.testing.assert_array_equal(first.scores[targets], second.scores[targets])

    def test_redundancy_factor_exceeds_one(self, graph, model):
        """Overlapping k-hop neighbourhoods recompute nodes many times over."""
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=4, fanout=None,
                                                                batch_size=16))
        result = pipeline.run(graph, compute_scores=False)
        assert result.redundancy_factor(graph) > 2.0

    def test_cost_only_run_skips_scores(self, graph, model):
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=4))
        result = pipeline.run(graph, targets=np.arange(32), compute_scores=False)
        assert result.scores is None
        assert result.cost.wall_clock_seconds > 0

    def test_batches_spread_over_workers(self, graph, model):
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=3, batch_size=16))
        result = pipeline.run(graph, targets=np.arange(96), compute_scores=False)
        busy_workers = {m.instance_id for m in result.metrics.instances("inference")}
        assert busy_workers == {0, 1, 2}

    def test_oom_detected_with_tiny_memory(self, graph, model):
        cluster = ClusterSpec(num_workers=2, worker=WorkerSpec(cpu_cores=2, memory_bytes=1e4))
        pipeline = TraditionalPipeline(model, TraditionalConfig(num_workers=2, cluster=cluster))
        result = pipeline.run(graph, targets=np.arange(32), compute_scores=False)
        assert result.cost.oom

    def test_estimate_costs_close_to_actual(self, graph, model):
        """Extrapolated costs should be within a factor ~2 of the measured run."""
        config = TraditionalConfig(num_workers=4, fanout=None, batch_size=32)
        pipeline = TraditionalPipeline(model, config)
        actual = pipeline.run(graph, compute_scores=False)
        estimated = pipeline.estimate_costs(graph, sample_size=64)
        ratio = estimated.cost.cpu_minutes / max(actual.cost.cpu_minutes, 1e-12)
        assert 0.4 < ratio < 2.5
        assert estimated.num_batches == actual.num_batches

    def test_estimate_costs_scales_with_hops(self, graph):
        shallow_model = build_model("sage", graph.feature_dim, 16, 3, num_layers=1, seed=0)
        deep_model = build_model("sage", graph.feature_dim, 16, 3, num_layers=2, seed=0)
        config = TraditionalConfig(num_workers=4, fanout=None)
        shallow = TraditionalPipeline(shallow_model, config).estimate_costs(graph, sample_size=48)
        deep = TraditionalPipeline(deep_model, config).estimate_costs(graph, sample_size=48)
        assert deep.cost.cpu_minutes > shallow.cost.cpu_minutes

    def test_sampling_reduces_cost(self, graph, model):
        config_full = TraditionalConfig(num_workers=4, fanout=None)
        config_sampled = TraditionalConfig(num_workers=4, fanout=2)
        full = TraditionalPipeline(model, config_full).estimate_costs(graph, sample_size=48)
        sampled = TraditionalPipeline(model, config_sampled).estimate_costs(graph, sample_size=48)
        assert sampled.cost.cpu_minutes < full.cost.cpu_minutes

    def test_default_cluster_is_traditional_flavour(self):
        config = TraditionalConfig(num_workers=4)
        assert config.cluster.worker.cpu_cores == 10
