"""Smoke + shape tests for the experiment harnesses (tiny configurations).

Each test asserts the *qualitative* property the corresponding paper artefact
claims — parity, speed-up direction, linearity, consistency, IO reduction —
not absolute values, which the full-size benchmarks report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import load_dataset
from repro.experiments import (
    fig7_consistency,
    fig8_scalability,
    fig9_partial_gather,
    fig10_outdegree,
    fig11_io_partial,
    fig12_io_broadcast,
    fig13_io_shadow,
    reporting,
    table1_datasets,
    table2_performance,
    table3_efficiency,
    table4_hops,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = reporting.format_table(["a", "bb"], [[1, 2.5], ["x", 0.0001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = reporting.format_series({"s": {0: 1.0, 1: 2.0}}, "x", "y", title="S")
        assert "[s]" in text
        assert "->" in text


class TestTable1:
    def test_rows_cover_all_datasets(self):
        result = table1_datasets.run(size="tiny")
        assert [row["dataset"] for row in result.rows] == ["ppi", "products", "mag240m", "powerlaw"]
        text = table1_datasets.format_result(result)
        assert "Table I" in text

    def test_paper_stats_reported_verbatim(self):
        result = table1_datasets.run(size="tiny")
        ppi = result.rows[0]
        assert ppi["paper_nodes"] == 56_944
        assert ppi["paper_classes"] == 121


class TestTable2:
    def test_metric_parity_across_pipelines(self):
        result = table2_performance.run(datasets=["products"], archs=["sage"], size="tiny",
                                        num_epochs=2, hidden_dim=16, max_eval_nodes=128)
        assert len(result.rows) == 1
        # Full-graph inference is exact, so all three pipelines agree (near) exactly.
        assert result.max_gap() < 1e-6
        assert "Table II" in table2_performance.format_result(result)

    def test_multilabel_dataset_runs(self):
        result = table2_performance.run(datasets=["ppi"], archs=["sage"], size="tiny",
                                        num_epochs=1, hidden_dim=16, max_eval_nodes=64)
        assert 0.0 <= result.rows[0].pregel_metric <= 1.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_efficiency.run(size="tiny", num_workers=16, archs=["sage"],
                                     cost_sample_size=64)

    def test_inferturbo_faster_than_traditional(self, result):
        assert result.speedup("sage", "pregel") > 5.0
        assert result.speedup("sage", "mapreduce") > 2.0

    def test_inferturbo_cheaper_than_traditional(self, result):
        assert result.resource_saving("sage", "pregel") > 5.0
        assert result.resource_saving("sage", "mapreduce") > 2.0

    def test_pregel_faster_than_mapreduce(self, result):
        assert (result.by("sage", "pregel").wall_clock_minutes
                < result.by("sage", "mapreduce").wall_clock_minutes)

    def test_all_columns_present(self, result):
        pipelines = {row.pipeline for row in result.rows}
        assert pipelines == {"pyg_like", "dgl_like", "pregel", "mapreduce"}
        assert "Table III" in table3_efficiency.format_result(result)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=5.0, skew="both", seed=1)
        return table4_hops.run(dataset=dataset, hops=(1, 2), num_workers=4,
                               traditional_memory_bytes=1.5e6, cost_sample_size=48)

    def test_traditional_grows_faster_than_ours(self, result):
        traditional_growth = result.growth_ratio("nbr10000", 1, 2)
        ours_growth = result.growth_ratio("ours", 1, 2)
        assert traditional_growth > ours_growth

    def test_ours_growth_is_roughly_linear(self, result):
        # Going from 1 to 2 layers adds one superstep: cost grows well below 2x ideal-exponential.
        assert result.growth_ratio("ours", 1, 2) < 2.5

    def test_large_fanout_oom_at_deeper_hops(self, result):
        assert result.by("nbr10000", 2).oom
        assert not result.by("ours", 2).oom
        assert "OOM" in table4_hops.format_result(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_consistency.run(fanouts=(2, 8), num_runs=4, num_targets=96,
                                    num_epochs=2, hidden_dim=16, size="tiny")

    def test_sampling_is_unstable(self, result):
        assert result.unstable_fraction(2) > 0.05

    def test_more_sampling_is_more_stable(self, result):
        assert result.unstable_fraction(8) <= result.unstable_fraction(2)

    def test_inferturbo_fully_stable(self, result):
        assert result.inferturbo_unstable_fraction() == 0.0
        assert "InferTurbo" in fig7_consistency.format_result(result)


class TestFig8:
    def test_near_linear_scaling(self):
        result = fig8_scalability.run(scales=(1000, 4000), backend="pregel", num_workers=4)
        slope = result.loglog_slope("cpu_minutes")
        assert 0.7 < slope < 1.3
        assert "slope" in fig8_scalability.format_result(result)


class TestHubFigures:
    def test_fig9_partial_gather_flattens_latency(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=8.0, skew="in", seed=2)
        result = fig9_partial_gather.run(dataset=dataset, num_workers=8, hidden_dim=16)
        assert result.partial_gather.variance_of_time() < result.base.variance_of_time()
        assert "Fig. 9" in fig9_partial_gather.format_result(result)

    def test_fig10_strategies_reduce_variance(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=8.0, skew="out", seed=3)
        result = fig10_outdegree.run(dataset=dataset, num_workers=8, hidden_dim=16)
        variances = result.variances()
        assert variances["SN"] < variances["base"]
        assert variances["BC"] < variances["base"]
        assert variances["SN+BC"] < variances["base"]
        assert "Fig. 10" in fig10_outdegree.format_result(result)

    def test_fig11_io_reduced(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=8.0, skew="in", seed=4)
        result = fig11_io_partial.run(dataset=dataset, num_workers=8, hidden_dim=16)
        assert result.total_reduction() > 0.1
        assert result.tail_reduction() > 0.1
        assert "Fig. 11" in fig11_io_partial.format_result(result)

    def test_fig12_broadcast_reduces_tail_io(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=8.0, skew="out", seed=5)
        result = fig12_io_broadcast.run(dataset=dataset, num_workers=8, hidden_dim=16)
        names = [name for name in result.series if name != "base"]
        assert any(result.tail_reduction(name) > 0.1 for name in names)
        assert "Fig. 12" in fig12_io_broadcast.format_result(result)

    def test_fig13_shadow_reduces_tail_io(self):
        dataset = load_dataset("powerlaw", num_nodes=4000, avg_degree=8.0, skew="out", seed=6)
        result = fig13_io_shadow.run(dataset=dataset, num_workers=8, hidden_dim=16)
        names = [name for name in result.series if name != "base"]
        assert any(result.tail_reduction(name) > 0.05 for name in names)
        assert "Fig. 13" in fig13_io_shadow.format_result(result)
