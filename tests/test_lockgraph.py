"""Tests for the runtime lock-order tracker (repro.analysis.lockgraph)."""

import threading

import pytest

from repro.analysis import lockgraph
from repro.analysis.lockgraph import (
    LockOrderViolation,
    TrackedRLock,
    note_slow_call,
    tracked_rlock,
)


@pytest.fixture
def tracking():
    """Enable tracking with clean global state, restoring the prior mode."""
    was_enabled = lockgraph.tracking_enabled()
    lockgraph.enable_tracking()
    lockgraph.reset()
    yield
    lockgraph.reset()
    if not was_enabled:
        lockgraph.disable_tracking()


def test_tracked_rlock_is_plain_rlock_when_disabled(tracking):
    lockgraph.disable_tracking()
    lock = tracked_rlock("test.plain")
    assert not isinstance(lock, TrackedRLock)
    with lock:
        pass  # still a working context manager
    lockgraph.enable_tracking()


def test_tracked_rlock_is_instrumented_when_enabled(tracking):
    lock = tracked_rlock("test.instrumented", forbid_slow=True)
    assert isinstance(lock, TrackedRLock)
    assert lock.forbid_slow


def test_nested_acquisition_records_edge(tracking):
    outer = TrackedRLock("test.outer")
    inner = TrackedRLock("test.inner")
    with outer:
        with inner:
            pass
    assert ("test.outer", "test.inner") in lockgraph.acquisition_edges()
    assert lockgraph.violations() == []


def test_reentrant_acquisition_is_not_an_edge(tracking):
    lock = TrackedRLock("test.reentrant")
    with lock:
        with lock:
            pass
    assert ("test.reentrant", "test.reentrant") not in lockgraph.acquisition_edges()
    assert lockgraph.violations() == []


def test_direct_cycle_raises(tracking):
    a = TrackedRLock("test.A")
    b = TrackedRLock("test.B")
    with a:
        with b:
            pass
    # Reverse order on the same thread: B -> A closes the A -> B cycle.
    with b:
        with pytest.raises(LockOrderViolation) as excinfo:
            a.acquire()
    assert "test.A" in str(excinfo.value)
    assert "test.B" in str(excinfo.value)
    assert len(lockgraph.violations()) == 1


def test_transitive_cycle_raises(tracking):
    a = TrackedRLock("test.A")
    b = TrackedRLock("test.B")
    c = TrackedRLock("test.C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    # C -> A closes the cycle A -> B -> C -> A.
    with c:
        with pytest.raises(LockOrderViolation):
            a.acquire()


def test_cycle_detected_across_threads(tracking):
    a = TrackedRLock("test.thread.A")
    b = TrackedRLock("test.thread.B")

    def record_forward():
        with a:
            with b:
                pass

    worker = threading.Thread(target=record_forward)
    worker.start()
    worker.join()

    with b:
        with pytest.raises(LockOrderViolation):
            a.acquire()


def test_slow_call_under_forbid_slow_lock_raises(tracking):
    pool_lock = TrackedRLock("test.pool", forbid_slow=True)
    with pool_lock:
        with pytest.raises(LockOrderViolation) as excinfo:
            note_slow_call("prepare")
    assert "prepare" in str(excinfo.value)
    assert "test.pool" in str(excinfo.value)
    assert len(lockgraph.violations()) == 1


def test_slow_call_under_ordinary_lock_is_fine(tracking):
    exec_lock = TrackedRLock("test.exec")
    with exec_lock:
        note_slow_call("infer")
    assert lockgraph.violations() == []


def test_slow_call_after_release_is_fine(tracking):
    pool_lock = TrackedRLock("test.pool2", forbid_slow=True)
    with pool_lock:
        pass
    note_slow_call("close")
    assert lockgraph.violations() == []


def test_note_slow_call_is_noop_when_disabled(tracking):
    pool_lock = TrackedRLock("test.pool3", forbid_slow=True)
    lockgraph.disable_tracking()
    try:
        with pool_lock:
            note_slow_call("prepare")  # must not raise
    finally:
        lockgraph.enable_tracking()
    assert lockgraph.violations() == []


def test_release_out_of_order_still_tracks_held_set(tracking):
    a = TrackedRLock("test.ooo.A")
    b = TrackedRLock("test.ooo.B")
    a.acquire()
    b.acquire()
    a.release()  # release outer first
    # Only B is held now: acquiring A again must record B -> A... but the
    # forward edge A -> B already exists, so this is itself the cycle.
    with pytest.raises(LockOrderViolation):
        a.acquire()
    b.release()


def test_session_pool_runs_clean_under_tracking(tracking):
    """End-to-end: the real pool honours its own contracts under tracking.

    The pool lock is ``forbid_slow`` and session ``prepare``/``infer``/
    ``close`` all call :func:`note_slow_call`; a pool that re-grew the
    fcf99ca shape (slow work under the pool lock) would fail here.
    """
    from repro.gnn.model import build_model
    from repro.graph.generators import powerlaw_graph
    from repro.inference import InferenceConfig, SessionPool

    model = build_model("gcn", 8, 16, 4, num_layers=2, seed=0)
    graph = powerlaw_graph(num_nodes=60, avg_degree=4.0, skew="out",
                           feature_dim=8, num_classes=4, seed=3)
    pool = SessionPool(model, InferenceConfig(backend="pregel", num_workers=2),
                       capacity=2)
    try:
        pool.infer(graph)
        pool.infer(graph)  # second hit exercises the cached-lookup path
    finally:
        pool.clear()
    assert lockgraph.violations() == []
