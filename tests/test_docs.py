"""Docs stay true: intra-repo links resolve, README quickstart blocks run.

Two failure modes this guards against:

* a file move breaking ``[text](path)`` links in ``README.md`` / ``docs/``;
* the README's Python quickstart blocks drifting from the real API.

The Python blocks are executed **sequentially in one namespace** (later
blocks intentionally build on the quickstart's ``session``/``graph``), so
the README reads as one continuous, runnable story.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def _markdown_links(path: Path):
    """All link targets in ``path``, with code fences masked out."""
    inside_fence = False
    for line in path.read_text().splitlines():
        if _FENCE.match(line):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1)


def _python_blocks(path: Path):
    blocks, current, language = [], None, None
    for line in path.read_text().splitlines():
        fence = _FENCE.match(line)
        if fence:
            if current is None:
                language, current = fence.group(1), []
            else:
                if language == "python":
                    blocks.append("\n".join(current))
                current, language = None, None
            continue
        if current is not None:
            current.append(line)
    return blocks


def test_doc_files_exist():
    assert (REPO_ROOT / "README.md").is_file(), "top-level README.md missing"
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(doc: Path):
    broken = []
    for target in _markdown_links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue                      # pure in-page anchor
        if not (doc.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken intra-repo link(s): {broken}"


def test_readme_python_blocks_execute():
    blocks = _python_blocks(REPO_ROOT / "README.md")
    assert len(blocks) >= 3, "README lost its runnable quickstart blocks"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[python block {index}]", "exec"),
                 namespace)
        except Exception as error:       # pragma: no cover - failure reporting
            pytest.fail(f"README python block {index} failed: {error!r}\n{block}")
