"""Tests for the autodiff tensor: ops, gradients, segment reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import ops
from repro.tensor.tensor import Tensor, concatenate, no_grad, stack, zeros, ones


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(x)
        flat[index] = original - eps
        lower = fn(x)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_and_shape(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert not t.requires_grad

    def test_detach_breaks_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_len_and_numpy(self):
        t = Tensor(np.arange(5.0))
        assert len(t) == 5
        assert t.numpy() is t.data

    def test_item_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_add_broadcast_backward(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])
        c = Tensor([2.0], requires_grad=True)
        (-c).backward()
        np.testing.assert_allclose(c.grad, [-1.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_matmul_backward_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numerical_grad(lambda x: (x @ b_val).sum(), a_val.copy())
        num_b = numerical_grad(lambda x: (a_val @ x).sum(), b_val.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 1.0 - a
        np.testing.assert_allclose(out.data, [-1.0])
        out2 = 1.0 / a
        np.testing.assert_allclose(out2.data, [0.5])

    def test_scalar_right_ops(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((3.0 * a).data, [6.0])
        np.testing.assert_allclose((3.0 + a).data, [5.0])


class TestShapingIndexing:
    def test_reshape_backward(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert a.T.shape == (3, 2)
        a.T.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_getitem_gather_backward_accumulates_duplicates(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        index = np.array([0, 0, 2])
        a[index].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0])

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_zeros_ones_helpers(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert ones((4,)).data.sum() == 4.0


class TestReductionsActivations:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_max_gradient_flows_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 4.0], [3.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [4.0, 3.0])

    @pytest.mark.parametrize("name", ["exp", "log", "relu", "sigmoid", "tanh"])
    def test_unary_gradients_match_numerical(self, name):
        rng = np.random.default_rng(1)
        x_val = rng.uniform(0.2, 2.0, size=(3, 3))
        x = Tensor(x_val.copy(), requires_grad=True)
        getattr(x, name)().sum().backward()

        def scalar_fn(arr):
            t = Tensor(arr)
            return float(getattr(t, name)().sum().data)

        numeric = numerical_grad(scalar_fn, x_val.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-4)

    def test_leaky_relu_negative_slope(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        out = x.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(2).normal(size=(5, 7)))
        probs = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 6)))
        np.testing.assert_allclose(ops.log_softmax(x).data,
                                   np.log(ops.softmax(x).data), atol=1e-10)


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        from repro.tensor.tensor import is_grad_enabled
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestSegmentOps:
    def test_segment_sum_basic(self):
        values = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = ops.segment_sum(values, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [3.0], [0.0]])

    def test_segment_sum_backward(self):
        values = Tensor(np.ones((4, 2)), requires_grad=True)
        ops.segment_sum(values, np.array([0, 1, 1, 0]), 2).sum().backward()
        np.testing.assert_allclose(values.grad, np.ones((4, 2)))

    def test_segment_mean_empty_segments_are_zero(self):
        values = Tensor(np.array([[4.0], [6.0]]))
        out = ops.segment_mean(values, np.array([1, 1]), 3)
        np.testing.assert_allclose(out.data, [[0.0], [5.0], [0.0]])

    def test_segment_max(self):
        values = Tensor(np.array([[1.0], [9.0], [5.0]]))
        out = ops.segment_max(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[9.0], [5.0]])

    def test_segment_max_empty_segment_is_zero(self):
        values = Tensor(np.array([[1.0]]))
        out = ops.segment_max(values, np.array([1]), 2)
        np.testing.assert_allclose(out.data, [[0.0], [1.0]])

    def test_segment_softmax_sums_to_one_per_segment(self):
        rng = np.random.default_rng(5)
        values = Tensor(rng.normal(size=(10, 3)))
        ids = rng.integers(0, 4, size=10)
        probs = ops.segment_softmax(values, ids, 4)
        sums = np.zeros((4, 3))
        np.add.at(sums, ids, probs.data)
        for segment in np.unique(ids):
            np.testing.assert_allclose(sums[segment], np.ones(3), atol=1e-10)

    def test_segment_count(self):
        counts = ops.segment_count(np.array([0, 2, 2, 2]), 4)
        np.testing.assert_array_equal(counts, [1, 0, 3, 0])

    def test_spmm_equals_dense(self):
        rng = np.random.default_rng(6)
        num_nodes = 6
        src = rng.integers(0, num_nodes, size=12)
        dst = rng.integers(0, num_nodes, size=12)
        state = rng.normal(size=(num_nodes, 3))
        dense = np.zeros((num_nodes, num_nodes))
        for s, d in zip(src, dst):
            dense[d, s] += 1.0
        expected = dense @ state
        out = ops.spmm(dst, src, None, Tensor(state), num_nodes)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_gather_rows(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        out = ops.gather_rows(x, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = ops.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_training_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = ops.dropout(x, 0.5, training=True, rng=rng)
        # Inverted dropout keeps the expectation, so the mean stays near 1.
        assert abs(out.data.mean() - 1.0) < 0.1


@settings(max_examples=40, deadline=None)
@given(
    num_rows=st.integers(min_value=1, max_value=30),
    num_segments=st.integers(min_value=1, max_value=8),
    width=st.integers(min_value=1, max_value=4),
)
def test_segment_sum_matches_bincount(num_rows, num_segments, width):
    """Property: segment_sum agrees with a per-column bincount reference."""
    rng = np.random.default_rng(num_rows * 31 + num_segments)
    values = rng.normal(size=(num_rows, width))
    ids = rng.integers(0, num_segments, size=num_rows)
    out = ops.segment_sum(Tensor(values), ids, num_segments).data
    expected = np.zeros((num_segments, width))
    for column in range(width):
        expected[:, column] = np.bincount(ids, weights=values[:, column], minlength=num_segments)
    np.testing.assert_allclose(out, expected, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    num_rows=st.integers(min_value=1, max_value=25),
    num_segments=st.integers(min_value=1, max_value=6),
)
def test_segment_mean_between_min_and_max(num_rows, num_segments):
    """Property: per-segment mean lies between the segment's min and max."""
    rng = np.random.default_rng(num_rows * 17 + num_segments)
    values = rng.normal(size=(num_rows, 2))
    ids = rng.integers(0, num_segments, size=num_rows)
    means = ops.segment_mean(Tensor(values), ids, num_segments).data
    for segment in np.unique(ids):
        rows = values[ids == segment]
        assert np.all(means[segment] >= rows.min(axis=0) - 1e-9)
        assert np.all(means[segment] <= rows.max(axis=0) + 1e-9)
