"""Tests for the GAS-abstraction GNN layers, annotations and model builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gnn.annotations import (
    StageAnnotation,
    apply_edge_stage,
    apply_node_stage,
    collect_annotations,
    gather_stage,
    stage_annotation,
)
from repro.gnn.gasconv import GASConv, LayerMode
from repro.gnn.gat import GATConv
from repro.gnn.gcn import GCNConv
from repro.gnn.model import GNNModel, build_model, layer_class
from repro.gnn.sage import SAGEConv
from repro.tensor.nn import Linear
from repro.tensor.tensor import Tensor


def random_subgraph(num_nodes=12, num_edges=40, in_dim=6, seed=0, edge_dim=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    state = rng.normal(size=(num_nodes, in_dim))
    edge_state = rng.normal(size=(num_edges, edge_dim)) if edge_dim else None
    return src, dst, state, edge_state


class TestAnnotations:
    def test_gather_annotation_records_partial(self):
        annotation = stage_annotation(SAGEConv.gather)
        assert annotation is not None
        assert annotation.stage == "gather"
        assert annotation.partial is True

    def test_gat_gather_not_partial(self):
        annotation = stage_annotation(GATConv.gather)
        assert annotation.partial is False

    def test_apply_node_and_edge_annotations(self):
        assert stage_annotation(SAGEConv.apply_node).stage == "apply_node"
        assert stage_annotation(SAGEConv.apply_edge).stage == "apply_edge"

    def test_collect_annotations_from_instance(self):
        layer = SAGEConv(4, 4)
        collected = collect_annotations(layer)
        assert set(collected) == {"gather", "apply_node", "apply_edge"}

    def test_annotation_serialisation_roundtrip(self):
        annotation = StageAnnotation("gather", partial=True, options={"pool": "mean"})
        rebuilt = StageAnnotation.from_dict(annotation.to_dict())
        assert rebuilt == annotation

    def test_custom_decorated_function(self):
        @gather_stage(partial=True, pool="sum")
        def my_gather():
            return "ok"

        @apply_node_stage
        def my_apply():
            return "ok"

        @apply_edge_stage()
        def my_edge():
            return "ok"

        assert my_gather() == "ok"
        assert stage_annotation(my_gather).options == {"pool": "sum"}
        assert stage_annotation(my_apply).stage == "apply_node"
        assert stage_annotation(my_edge).stage == "apply_edge"


class TestSAGEConv:
    @pytest.mark.parametrize("aggregator", ["mean", "sum", "max"])
    def test_forward_shapes(self, aggregator):
        src, dst, state, _ = random_subgraph()
        layer = SAGEConv(6, 5, aggregator=aggregator)
        out = layer.forward(Tensor(state), src, dst)
        assert out.shape == (12, 5)

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            SAGEConv(4, 4, aggregator="median")

    def test_fused_matches_default_path(self):
        src, dst, state, _ = random_subgraph(seed=3)
        layer = SAGEConv(6, 5, aggregator="mean", activation="none")
        fused = layer.forward(Tensor(state), src, dst, mode=LayerMode.TRAIN)
        default = layer.forward(Tensor(state), src, dst, mode=LayerMode.PREDICT)
        np.testing.assert_allclose(fused.data, default.data, atol=1e-10)

    def test_supports_partial_gather(self):
        assert SAGEConv(4, 4).supports_partial_gather is True

    def test_gather_counts_weighting_exact(self):
        """Partial sums + counts must give exactly the full mean."""
        layer = SAGEConv(3, 3, aggregator="mean")
        rng = np.random.default_rng(0)
        messages = rng.normal(size=(6, 3))
        dst = np.array([0, 0, 0, 1, 1, 1])
        full = layer.gather(Tensor(messages), dst, 2).data
        # Fold the first two rows of each destination into one partial row.
        folded = np.stack([messages[0] + messages[1], messages[2],
                           messages[3] + messages[4], messages[5]])
        folded_dst = np.array([0, 0, 1, 1])
        counts = np.array([2, 1, 2, 1])
        partial = layer.gather(Tensor(folded), folded_dst, 2, counts).data
        np.testing.assert_allclose(partial, full, atol=1e-12)

    def test_partial_reduce_sum_and_max(self):
        messages = np.array([[1.0, 5.0], [3.0, 2.0]])
        sum_layer = SAGEConv(2, 2, aggregator="sum")
        payload, count = sum_layer.partial_reduce(messages)
        np.testing.assert_allclose(payload, [4.0, 7.0])
        assert count == 2
        max_layer = SAGEConv(2, 2, aggregator="max")
        payload, _ = max_layer.partial_reduce(messages)
        np.testing.assert_allclose(payload, [3.0, 5.0])

    def test_edge_features_change_messages(self):
        src, dst, state, edge_state = random_subgraph(edge_dim=4, seed=7)
        layer = SAGEConv(6, 5, edge_dim=4)
        with_edges = layer.forward(Tensor(state), src, dst, edge_state=Tensor(edge_state))
        without = layer.forward(Tensor(state), src, dst)
        assert not np.allclose(with_edges.data, without.data)

    def test_message_dim_is_input_dim(self):
        assert SAGEConv(7, 3).message_dim == 7

    def test_node_with_no_in_edges_gets_zero_aggregate(self):
        layer = SAGEConv(2, 2, activation="none")
        state = np.ones((3, 2))
        src = np.array([0])
        dst = np.array([1])
        out = layer.forward(Tensor(state), src, dst)
        # Node 2 has no in-edges: output = self transform only.
        expected = layer.self_linear(Tensor(state[2:3])).data
        np.testing.assert_allclose(out.data[2], expected[0], atol=1e-12)


class TestGATConv:
    def test_forward_shapes_concat(self):
        src, dst, state, _ = random_subgraph()
        layer = GATConv(6, 4, heads=3, concat=True)
        out = layer.forward(Tensor(state), src, dst)
        assert out.shape == (12, 12)
        assert layer.output_dim == 12

    def test_forward_shapes_mean_heads(self):
        src, dst, state, _ = random_subgraph()
        layer = GATConv(6, 4, heads=3, concat=False)
        assert layer.forward(Tensor(state), src, dst).shape == (12, 4)

    def test_attention_weights_sum_to_one(self):
        """Apply a single-head GAT on a star: attention must be a convex combination."""
        num_leaves = 5
        state = np.random.default_rng(0).normal(size=(num_leaves + 1, 3))
        src = np.arange(1, num_leaves + 1)
        dst = np.zeros(num_leaves, dtype=np.int64)
        layer = GATConv(3, 3, heads=1, concat=True, activation="none")
        out = layer.forward(Tensor(state), src, dst)
        projected = layer.linear(Tensor(state)).data
        hub = out.data[0] - layer.bias.data
        # The hub output must lie in the convex hull of projected leaf features.
        assert hub.min() >= projected[1:].min() - 1e-9
        assert hub.max() <= projected[1:].max() + 1e-9

    def test_partial_gather_not_supported(self):
        layer = GATConv(4, 4)
        assert layer.supports_partial_gather is False
        with pytest.raises(RuntimeError):
            layer.partial_reduce(np.ones((2, 4)))

    def test_gather_rejects_preaggregated_counts(self):
        layer = GATConv(4, 4)
        with pytest.raises(RuntimeError):
            layer.gather(Tensor(np.ones((2, layer.message_dim))), np.array([0, 0]), 1,
                         counts=np.array([3, 1]))

    def test_message_dim_includes_logits(self):
        layer = GATConv(6, 4, heads=3)
        assert layer.message_dim == 3 * 4 + 3

    def test_no_in_edges_anywhere(self):
        layer = GATConv(3, 3, heads=2)
        state = np.ones((4, 3))
        out = layer.forward(Tensor(state), np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64))
        assert out.shape == (4, 6)

    def test_edge_features_change_output(self):
        src, dst, state, edge_state = random_subgraph(edge_dim=3, seed=9)
        layer = GATConv(6, 4, heads=2, edge_dim=3)
        with_edges = layer.forward(Tensor(state), src, dst, edge_state=Tensor(edge_state))
        without = layer.forward(Tensor(state), src, dst)
        assert not np.allclose(with_edges.data, without.data)


class TestGCNConv:
    def test_forward_shapes(self):
        src, dst, state, _ = random_subgraph()
        out = GCNConv(6, 8).forward(Tensor(state), src, dst)
        assert out.shape == (12, 8)

    def test_supports_partial_gather(self):
        assert GCNConv(4, 4).supports_partial_gather is True

    def test_isolated_node_uses_self_only(self):
        layer = GCNConv(2, 2, activation="none")
        state = np.array([[2.0, 4.0], [1.0, 1.0]])
        out = layer.forward(Tensor(state), np.array([0]), np.array([0]))
        # Node 1 has no in-edges: (0 + state)/2 through the linear layer.
        expected = layer.linear(Tensor(state[1:2] * 0.5)).data
        np.testing.assert_allclose(out.data[1], expected[0], atol=1e-12)


class TestModelBuilder:
    @pytest.mark.parametrize("arch", ["sage", "gat", "gcn"])
    def test_build_and_forward(self, arch):
        model = build_model(arch, feature_dim=10, hidden_dim=16, num_classes=5, num_layers=2)
        src, dst, state, _ = random_subgraph(num_nodes=20, num_edges=60, in_dim=10, seed=1)
        out = model.forward(Tensor(state), src, dst, num_nodes=20)
        assert out.shape == (20, 5)

    def test_three_layer_model(self):
        model = build_model("sage", 8, 12, 3, num_layers=3)
        assert model.num_layers == 3

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_model("transformer", 8, 16, 3)

    def test_layer_dim_mismatch_rejected(self):
        encoder = Linear(8, 16)
        bad_layer = SAGEConv(99, 16)
        with pytest.raises(ValueError):
            GNNModel(encoder, [bad_layer], Linear(16, 3))

    def test_head_dim_mismatch_rejected(self):
        encoder = Linear(8, 16)
        layer = SAGEConv(16, 16)
        with pytest.raises(ValueError):
            GNNModel(encoder, [layer], Linear(99, 3))

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            GNNModel(Linear(4, 8), [], Linear(8, 2))

    def test_model_without_head_outputs_embeddings(self):
        encoder = Linear(6, 8)
        model = GNNModel(encoder, [SAGEConv(8, 8)], None)
        assert model.output_dim == 8

    def test_layer_class_registry(self):
        assert layer_class("SAGEConv") is SAGEConv
        with pytest.raises(KeyError):
            layer_class("MysteryConv")

    def test_encode_and_predict(self):
        model = build_model("sage", 6, 8, 3)
        encoded = model.encode(Tensor(np.ones((4, 6))))
        assert encoded.shape == (4, 8)
        logits = model.predict(Tensor(np.ones((4, 8))))
        assert logits.shape == (4, 3)


@settings(max_examples=20, deadline=None)
@given(num_splits=st.integers(min_value=1, max_value=5),
       num_messages=st.integers(min_value=2, max_value=24),
       aggregator=st.sampled_from(["sum", "mean", "max"]))
def test_partial_gather_is_exact_for_any_split(num_splits, num_messages, aggregator):
    """Property: splitting messages into arbitrary sender groups and folding each
    group with partial_reduce gives exactly the same aggregate as one-shot gather.
    This is the commutativity/associativity contract partial-gather relies on."""
    rng = np.random.default_rng(num_splits * 100 + num_messages)
    layer = SAGEConv(4, 4, aggregator=aggregator)
    messages = rng.normal(size=(num_messages, 4))
    dst = np.zeros(num_messages, dtype=np.int64)
    full = layer.gather(Tensor(messages), dst, 1).data

    boundaries = np.sort(rng.choice(np.arange(1, num_messages), size=min(num_splits, num_messages - 1),
                                    replace=False)) if num_messages > 1 else np.array([], dtype=int)
    groups = np.split(np.arange(num_messages), boundaries)
    folded_rows, counts = [], []
    for group in groups:
        if group.size == 0:
            continue
        payload, count = layer.partial_reduce(messages[group])
        folded_rows.append(payload)
        counts.append(count)
    partial = layer.gather(Tensor(np.stack(folded_rows)),
                           np.zeros(len(folded_rows), dtype=np.int64), 1,
                           np.asarray(counts)).data
    np.testing.assert_allclose(partial, full, atol=1e-10)
