"""The lint framework and every rule, against the fixture corpus.

Each rule has a ``bad`` fixture (asserting the *exact* findings: rule,
path, line) and a ``good`` counter-fixture (asserting zero findings under
**all** rules, so the sanctioned shapes stay sanctioned).  The
``lock_discipline/bad`` fixture reproduces the fcf99ca
lock-held-across-prepare shape as a permanent regression test.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    UnknownRuleError,
    available_rules,
    get_rule,
    load_baseline,
    partition_findings,
    register_rule,
    run_analysis,
    unregister_rule,
    write_baseline,
)
from repro.analysis.__main__ import main as lint_main
from repro.analysis.lint import iter_python_files

FIXTURES = Path(__file__).parent / "analysis_fixtures"

EXPECTED_RULES = {"lock-discipline", "fingerprint-under-lock", "determinism",
                  "broad-except", "backend-protocol"}


def findings_in(case: str):
    """(rule, path-relative-to-fixture-case, line) for every finding."""
    results = run_analysis([str(FIXTURES / case)])
    marker = case.replace("\\", "/") + "/"
    triples = []
    for finding in results:
        _, _, rel = finding.path.partition(marker)
        triples.append((finding.rule, rel, finding.line))
    return triples


# --------------------------------------------------------------------------- #
# the rules, one bad/good pair each
# --------------------------------------------------------------------------- #


def test_all_expected_rules_registered():
    assert EXPECTED_RULES <= available_rules()


def test_lock_discipline_flags_fcf99ca_shape():
    """Regression: prepare()/close() under the pool lock must be flagged."""
    assert findings_in("lock_discipline/bad") == [
        ("lock-discipline", "pool.py", 15),   # session.prepare() under lock
        ("lock-discipline", "pool.py", 22),   # session.close() under lock
    ]


def test_lock_discipline_accepts_fixed_shape():
    assert findings_in("lock_discipline/good") == []


def test_fingerprint_outside_lock_flagged():
    assert findings_in("fingerprint/bad") == [
        ("fingerprint-under-lock", "pool.py", 10),
    ]


def test_fingerprint_under_lock_accepted():
    assert findings_in("fingerprint/good") == []


def test_determinism_flags_every_hazard():
    assert findings_in("determinism/bad") == [
        ("determinism", "pregel/kernel.py", 11),   # time.time()
        ("determinism", "pregel/kernel.py", 12),   # datetime.now()
        ("determinism", "pregel/kernel.py", 14),   # set-literal iteration
        ("determinism", "pregel/kernel.py", 16),   # set(...) iteration
        ("determinism", "pregel/kernel.py", 18),   # np.random global RNG
        ("determinism", "pregel/kernel.py", 19),   # unseeded default_rng()
        ("determinism", "pregel/kernel.py", 20),   # bare random.random()
        ("determinism", "pregel/kernel.py", 21),   # perf_counter fed into call
    ]


def test_determinism_accepts_sanctioned_shapes():
    assert findings_in("determinism/good") == []


def test_broad_except_flags_unjustified_handlers():
    assert findings_in("broad_except/bad") == [
        ("broad-except", "handlers.py", 7),    # except Exception: pass
        ("broad-except", "handlers.py", 14),   # bare except
        ("broad-except", "handlers.py", 21),   # Exception inside a tuple
    ]


def test_broad_except_accepts_reraise_justification_and_narrow():
    assert findings_in("broad_except/good") == []


def test_backend_protocol_flags_every_defect():
    assert findings_in("backend_protocol/bad") == [
        ("backend-protocol", "backends.py", 10),  # missing default_cluster
        ("backend-protocol", "backends.py", 10),  # missing execute
        ("backend-protocol", "backends.py", 14),  # apply_deltas typo
        ("backend-protocol", "backends.py", 17),  # drifted incremental sig
    ]


def test_backend_protocol_accepts_complete_backend():
    assert findings_in("backend_protocol/good") == []


def test_real_serving_layer_lints_clean():
    """The production pool/session/gateway must satisfy their own contracts."""
    root = Path(__file__).parent.parent / "src" / "repro"
    findings = run_analysis([str(root / "inference" / "pool.py"),
                             str(root / "inference" / "session.py"),
                             str(root / "serving" / "gateway.py")])
    assert findings == []


# --------------------------------------------------------------------------- #
# framework: registry, walker, parse errors
# --------------------------------------------------------------------------- #


def test_register_rule_rejects_duplicates():
    @register_rule("test-dummy-rule")
    class DummyRule:
        def check(self, module):
            return []

    try:
        with pytest.raises(ValueError, match="already registered"):
            @register_rule("test-dummy-rule")
            class SecondRule:
                def check(self, module):
                    return []
    finally:
        unregister_rule("test-dummy-rule")
    assert "test-dummy-rule" not in available_rules()


def test_get_rule_unknown_name():
    with pytest.raises(UnknownRuleError, match="no-such-rule"):
        get_rule("no-such-rule")


def test_rule_selection_restricts_findings():
    results = run_analysis([str(FIXTURES / "determinism" / "bad")],
                           rules=["broad-except"])
    assert results == []


def test_parse_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def half(:\n")
    findings = run_analysis([str(tmp_path)])
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"
    assert findings[0].line == 1


def test_iter_python_files_skips_hidden_and_pycache(tmp_path):
    (tmp_path / "keep.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "skip.py").write_text("x = 2\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "skip.py").write_text("x = 3\n")
    found = [Path(p).name for p in iter_python_files([str(tmp_path)])]
    assert found == ["keep.py"]


def test_finding_describe_and_baseline_key():
    finding = Finding(path="src/x.py", line=7, rule="determinism", message="m")
    assert finding.describe() == "src/x.py:7: [determinism] m"
    assert finding.baseline_key == "determinism:src/x.py:7"


# --------------------------------------------------------------------------- #
# baseline ratchet
# --------------------------------------------------------------------------- #


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.txt")) == set()


def test_baseline_roundtrip_and_partition(tmp_path):
    old = Finding(path="a.py", line=1, rule="broad-except", message="old")
    new = Finding(path="b.py", line=2, rule="determinism", message="new")
    path = tmp_path / "baseline.txt"
    write_baseline(str(path), [old])
    baseline = load_baseline(str(path))
    assert baseline == {"broad-except:a.py:1"}

    fresh, grandfathered, stale = partition_findings([old, new], baseline)
    assert fresh == [new]
    assert grandfathered == [old]
    assert stale == set()

    # The grandfathered finding gets fixed: its entry becomes stale.
    fresh, grandfathered, stale = partition_findings([new], baseline)
    assert fresh == [new]
    assert grandfathered == []
    assert stale == {"broad-except:a.py:1"}


# --------------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------------- #


def test_cli_fails_on_new_findings(tmp_path, capsys):
    code = lint_main([str(FIXTURES / "broad_except" / "bad"),
                      "--baseline", str(tmp_path / "empty.txt")])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL: 3 new finding(s)" in out
    assert "[broad-except]" in out


def test_cli_passes_on_clean_tree(tmp_path, capsys):
    code = lint_main([str(FIXTURES / "broad_except" / "good"),
                      "--baseline", str(tmp_path / "empty.txt")])
    out = capsys.readouterr().out
    assert code == 0
    assert "OK: 0 new finding(s)" in out


def test_cli_update_baseline_then_green(tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    target = str(FIXTURES / "determinism" / "bad")
    assert lint_main([target, "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    capsys.readouterr()
    # Grandfathered now: same findings, exit 0, suppression reported.
    code = lint_main([target, "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "8 grandfathered finding(s) suppressed" in out


def test_cli_reports_stale_entries_without_failing(tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("determinism:gone.py:1  # fixed long ago\n")
    code = lint_main([str(FIXTURES / "broad_except" / "good"),
                      "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stale baseline entry" in out
    assert "determinism:gone.py:1" in out


def test_cli_json_format(tmp_path, capsys):
    code = lint_main([str(FIXTURES / "fingerprint" / "bad"),
                      "--baseline", str(tmp_path / "empty.txt"),
                      "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert len(payload["new"]) == 1
    assert "[fingerprint-under-lock]" in payload["new"][0]
    assert payload["grandfathered"] == []
    assert payload["stale_baseline_entries"] == []


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    listed = set(capsys.readouterr().out.split())
    assert EXPECTED_RULES <= listed


def test_cli_rule_filter(tmp_path, capsys):
    code = lint_main([str(FIXTURES / "determinism" / "bad"),
                      "--baseline", str(tmp_path / "empty.txt"),
                      "--rule", "broad-except"])
    out = capsys.readouterr().out
    assert code == 0
    assert "OK: 0 new finding(s)" in out


def test_repo_baseline_is_empty():
    """The checked-in baseline must stay empty: the tree lints clean."""
    baseline = Path(__file__).parent.parent / "analysis-baseline.txt"
    assert baseline.exists()
    assert load_baseline(str(baseline)) == set()
