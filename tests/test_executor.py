"""Unit tests for the executor layer itself.

The engines' conformance is covered in ``test_backend_conformance.py``; here
the executor contracts are tested in isolation: registry resolution, the
stateless task wave, the stateful harness session with cross-slot message
delivery, shared-memory array shipping (including the in-place-write
visibility the delta path relies on), worker error propagation, and the cost
model's predicted-vs-measured validation path.
"""

from __future__ import annotations

import numpy as np
import pytest

import os
import signal
import time

from repro.cluster.cost_model import CostModel
from repro.cluster.executor import (
    ProcessExecutor,
    SerialExecutor,
    SharedArrayPack,
    UnknownExecutorError,
    WorkerCrashError,
    WorkerHarness,
    attach_shared_array,
    available_executors,
    build_executor,
    default_executor_name,
)
from repro.batch.mapreduce import _default_partition_fn, _hash_is_process_stable
from repro.cluster.metrics import MetricsCollector
from repro.cluster.resources import ClusterSpec

EXECUTOR_NAMES = sorted(available_executors())


# --------------------------------------------------------------------------- #
# module-level helpers (must be picklable for the process executor)
# --------------------------------------------------------------------------- #
def _square(value):
    return value * value


def _fail(value):
    raise ValueError(f"task exploded on {value}")


def _read_shared(spec, row):
    return float(attach_shared_array(spec)[row, 0])


def _getpid():
    return os.getpid()


class _EchoHarness(WorkerHarness):
    """Forwards each received number to the next slot, +slot_id."""

    def __init__(self, slot_id, payload):
        self.slot_id = slot_id
        self.num_slots = payload["num_slots"]
        self.received = []

    def step(self, control, incoming):
        self.received.append(sorted(incoming))
        target = (self.slot_id + 1) % self.num_slots
        return (self.slot_id, list(incoming)), [(target, [control + self.slot_id])]

    def finish(self):
        return self.received


def _build_echo_harness(slot_id, payload):
    return _EchoHarness(slot_id, payload)


# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_available_contains_both_substrates(self):
        assert {"serial", "process"} <= available_executors()

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownExecutorError, match="unknown executor"):
            build_executor("threads", 2)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_name() == "serial"
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert default_executor_name() == "process"
        assert build_executor(None, 2).name == "process"
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(UnknownExecutorError):
            default_executor_name()

    def test_invalid_slot_count(self):
        with pytest.raises(ValueError):
            SerialExecutor(0)


@pytest.mark.parametrize("name", EXECUTOR_NAMES)
class TestRunTasks:
    def test_results_in_task_order(self, name):
        executor = build_executor(name, 3)
        try:
            # More tasks than slots: waves must preserve task order.
            assert executor.run_tasks(_square, [(i,) for i in range(8)]) == \
                [i * i for i in range(8)]
        finally:
            executor.shutdown()

    def test_task_errors_propagate(self, name):
        executor = build_executor(name, 2)
        try:
            with pytest.raises(ValueError, match="task exploded on 7"):
                executor.run_tasks(_fail, [(7,)])
            # The executor stays usable after a failed wave.
            assert executor.run_tasks(_square, [(3,)]) == [9]
        finally:
            executor.shutdown()


@pytest.mark.parametrize("name", EXECUTOR_NAMES)
class TestHarnessSession:
    def test_messages_route_between_slots(self, name):
        num_slots = 3
        executor = build_executor(name, num_slots)
        try:
            executor.open(_build_echo_harness,
                          [{"num_slots": num_slots}] * num_slots)
            first = executor.step([100] * num_slots)
            # Step 0: no mail yet.
            assert [incoming for _, incoming in first] == [[], [], []]
            second = executor.step([200] * num_slots)
            # Step 1: slot s received 100 + (s-1) from its left neighbour.
            assert [incoming for _, incoming in second] == [[102], [100], [101]]
            finals = executor.close()
        finally:
            executor.shutdown()
        if name == "serial":
            # Serial harnesses are live objects; their history is observable.
            assert finals == [[[], [102]], [[], [100]], [[], [101]]]

    def test_double_open_rejected(self, name):
        executor = build_executor(name, 1)
        try:
            executor.open(_build_echo_harness, [{"num_slots": 1}])
            with pytest.raises(RuntimeError, match="already has an open"):
                executor.open(_build_echo_harness, [{"num_slots": 1}])
            executor.close()
            # Closed sessions can be reopened.
            executor.open(_build_echo_harness, [{"num_slots": 1}])
            executor.close()
        finally:
            executor.shutdown()

    def test_payload_count_mismatch(self, name):
        executor = build_executor(name, 2)
        try:
            with pytest.raises(ValueError, match="expected 2 payloads"):
                executor.open(_build_echo_harness, [{"num_slots": 2}])
        finally:
            executor.shutdown()


class TestCrashRecovery:
    def test_dead_worker_resets_pool_and_next_use_respawns(self):
        executor = ProcessExecutor(2)
        try:
            pids = executor.run_tasks(_getpid, [(), ()])
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.2)     # let the kill land before the next wave
            with pytest.raises(WorkerCrashError, match="respawn"):
                executor.run_tasks(_square, [(1,), (2,)])
            # The crash must not poison the executor: the next use respawns a
            # fresh pool transparently (this is what keeps a SessionPool entry
            # serviceable after one OOM-killed worker).
            assert executor.run_tasks(_square, [(2,), (3,)]) == [4, 9]
            assert set(executor.run_tasks(_getpid, [(), ()])) != set(pids)
        finally:
            executor.shutdown()


class TestShufflePlacementStability:
    def test_salted_hash_default_only_ships_with_stable_seed(self, monkeypatch):
        # The default partition function uses Python's salted hash(); shipping
        # it to workers with divergent hash seeds would split one key across
        # reducers — silently wrong output.  Fork inherits the parent's seed;
        # spawn only agrees under an explicitly pinned PYTHONHASHSEED.
        spawn_executor = ProcessExecutor(2, start_method="spawn")
        fork_executor = ProcessExecutor(2, start_method="fork")
        try:
            monkeypatch.delenv("PYTHONHASHSEED", raising=False)
            assert not _hash_is_process_stable(spawn_executor)
            assert _hash_is_process_stable(fork_executor)
            monkeypatch.setenv("PYTHONHASHSEED", "random")
            assert not _hash_is_process_stable(spawn_executor)
            monkeypatch.setenv("PYTHONHASHSEED", "0")
            assert _hash_is_process_stable(spawn_executor)
            assert _default_partition_fn("key", 4) == hash("key") % 4
        finally:
            spawn_executor.shutdown()   # no workers were ever spawned
            fork_executor.shutdown()


class TestSharedArrays:
    def test_roundtrip_and_in_place_visibility(self):
        pack = SharedArrayPack()
        try:
            source = np.arange(12, dtype=np.float64).reshape(4, 3)
            spec = pack.share("x", source)
            view = pack.array_for("x")
            np.testing.assert_array_equal(view, source)

            executor = ProcessExecutor(1)
            try:
                assert executor.run_tasks(_read_shared, [(spec, 1)]) == [3.0]
                # Parent-side in-place write is visible to workers without
                # re-sharing — the property feature-delta scatters rely on.
                view[1, 0] = 42.0
                assert executor.run_tasks(_read_shared, [(spec, 1)]) == [42.0]
            finally:
                executor.shutdown()

            # Re-sharing the same view is a no-op returning the same segment.
            assert pack.share("x", view).name == spec.name
            assert pack.is_current("x", view)
            # A wholesale-replaced array gets a fresh segment.
            replacement = np.zeros((2, 2))
            assert pack.share("x", replacement).name != spec.name
        finally:
            pack.close()

    def test_empty_arrays_ship_inline(self):
        pack = SharedArrayPack()
        try:
            spec = pack.share("empty", np.empty(0, dtype=np.int64))
            assert spec.name is None
            attached = attach_shared_array(spec)
            assert attached.size == 0 and attached.dtype == np.int64
        finally:
            pack.close()


class TestCostValidation:
    def test_measured_seconds_attach_validation(self):
        metrics = MetricsCollector()
        metrics.record("phase_0", 0, compute_units=100.0, measured_seconds=0.2)
        metrics.record("phase_0", 1, compute_units=900.0, measured_seconds=0.9)
        summary = CostModel(ClusterSpec.pregel_default(2)).summarize(metrics)
        validation = summary.validation
        assert validation is not None
        phase = validation.phases[0]
        assert phase.measured_wall_seconds == pytest.approx(0.9)
        # Both sides agree instance 1 is the straggler.
        assert phase.stragglers_match
        assert validation.straggler_match_rate == 1.0
        assert validation.time_scale > 0
        assert "straggler agreement" in validation.describe()

    def test_no_measurements_no_validation(self):
        metrics = MetricsCollector()
        metrics.record("phase_0", 0, compute_units=10.0)
        model = CostModel(ClusterSpec.pregel_default(1))
        assert model.summarize(metrics).validation is None
        with pytest.raises(ValueError, match="no\\s+measured_seconds"):
            model.summarize(metrics, validate_measured=True)

    def test_validation_skippable(self):
        metrics = MetricsCollector()
        metrics.record("phase_0", 0, compute_units=10.0, measured_seconds=0.1)
        summary = CostModel(ClusterSpec.pregel_default(1)).summarize(
            metrics, validate_measured=False)
        assert summary.validation is None
