"""Fault-plan contracts: replayability, hook registry, built-in hooks.

The hooks are exercised here in isolation (against a real pool) so failures
localise; end-to-end fault soaks live in ``test_streaming_soak.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster.executor import WorkerCrashError
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference.config import InferenceConfig, StrategyConfig
from repro.inference.pool import SessionPool
from repro.streaming.faults import (
    DeltaSchedule,
    FaultContext,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    available_faults,
    register_fault,
)

FEATURE_DIM = 6
NUM_CLASSES = 3


def make_pool(executor: str = "serial", num_workers: int = 2) -> SessionPool:
    model = build_model("gcn", FEATURE_DIM, 8, NUM_CLASSES, num_layers=2,
                        seed=0)
    config = InferenceConfig(
        backend="pregel", num_workers=num_workers, executor=executor,
        strategies=StrategyConfig(partial_gather=True, broadcast=False,
                                  shadow_nodes=False,
                                  hub_threshold_override=1_000_000))
    return SessionPool(model, config, capacity=4)


def make_graph(seed: int = 11):
    return powerlaw_graph(num_nodes=80, avg_degree=4.0, skew="out",
                          feature_dim=FEATURE_DIM, num_classes=NUM_CLASSES,
                          seed=seed)


class TestFaultPlan:
    def test_generate_is_seed_deterministic(self):
        kinds = ("kill_worker", "evict_tenant", "delay_deltas")
        first = FaultPlan.generate(seed=7, ticks=50, tenants=3, kinds=kinds,
                                   rate=0.3)
        second = FaultPlan.generate(seed=7, ticks=50, tenants=3, kinds=kinds,
                                    rate=0.3)
        assert first.events == second.events
        assert first.digest == second.digest
        assert first.events, "rate=0.3 over 50 ticks produced no events"
        other = FaultPlan.generate(seed=8, ticks=50, tenants=3, kinds=kinds,
                                   rate=0.3)
        assert other.digest != first.digest

    def test_generate_validates_inputs(self):
        with pytest.raises(ValueError, match="unregistered"):
            FaultPlan.generate(seed=0, ticks=5, tenants=1,
                               kinds=("meteor_strike",))
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.generate(seed=0, ticks=5, tenants=1, rate=1.5)
        with pytest.raises(ValueError, match="kinds"):
            FaultPlan.generate(seed=0, ticks=5, tenants=1, kinds=())

    def test_schedule_rows_and_events_at(self):
        plan = FaultPlan(seed=1, ticks=10, events=(
            FaultEvent(tick=2, kind="evict_tenant", tenant=0),
            FaultEvent(tick=2, kind="delay_deltas", tenant=1),
            FaultEvent(tick=7, kind="kill_worker", tenant=0, slot=3)))
        assert len(plan.events_at(2)) == 2
        assert plan.events_at(5) == []
        rows = plan.schedule()
        assert rows[2] == {"tick": 7, "kind": "kill_worker", "tenant": 0,
                           "slot": 3}
        assert "3 event(s)" in plan.describe()


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"kill_worker", "evict_tenant", "delay_deltas"} <= \
            available_faults()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("kill_worker")(lambda ctx: "nope")

    def test_custom_hook_fires_through_injector(self):
        kind = "test_only_noop_hook"
        fired = []

        @register_fault(kind)
        def _hook(ctx: FaultContext) -> str:
            fired.append(ctx.event.tick)
            return "custom hook ran"

        try:
            plan = FaultPlan(seed=0, ticks=3, events=(
                FaultEvent(tick=1, kind=kind, tenant=0),))
            injector = FaultInjector(plan)
            pool = make_pool()
            graph = make_graph()
            record = injector.fire(FaultContext(
                event=plan.events[0], pool=pool, graph=graph,
                schedule=DeltaSchedule()))
            assert fired == [1]
            assert record.note == "custom hook ran"
            assert injector.records == [record]
        finally:
            from repro.streaming import faults as faults_module
            faults_module._HOOKS.pop(kind, None)

    def test_injector_rejects_unregistered_plan(self):
        plan = FaultPlan(seed=0, ticks=1, events=(
            FaultEvent(tick=0, kind="phantom", tenant=0),))
        with pytest.raises(ValueError, match="phantom"):
            FaultInjector(plan)


class TestBuiltinHooks:
    def fire(self, kind, pool, graph, schedule=None, tick=0, slot=0):
        event = FaultEvent(tick=tick, kind=kind, tenant=0, slot=slot)
        injector = FaultInjector(FaultPlan(seed=0, ticks=tick + 1,
                                           events=(event,)))
        return injector.fire(FaultContext(
            event=event, pool=pool, graph=graph,
            schedule=schedule or DeltaSchedule()))

    def test_kill_worker_is_noop_without_session(self):
        pool = make_pool()
        try:
            record = self.fire("kill_worker", pool, make_graph())
            assert "no live pooled session" in record.note
        finally:
            pool.clear()

    def test_kill_worker_is_noop_on_serial(self):
        pool = make_pool("serial")
        graph = make_graph()
        try:
            pool.infer(graph)
            record = self.fire("kill_worker", pool, graph)
            assert "serial substrate" in record.note
        finally:
            pool.clear()

    def test_kill_worker_crashes_then_recovers_on_process_executor(self):
        pool = make_pool("process", num_workers=2)
        graph = make_graph()
        try:
            before = pool.infer(graph)
            record = self.fire("kill_worker", pool, graph)
            assert "killed worker pid" in record.note
            # The next execution observes the corpse and raises; the one
            # after that runs on a respawned worker pool and must still
            # produce bit-identical scores (nothing was mutated mid-tick).
            with pytest.raises(WorkerCrashError):
                pool.infer(graph)
            after = pool.infer(graph)
            assert (after.scores == before.scores).all()
        finally:
            pool.clear()

    def test_evict_tenant_drops_the_pool_entry(self):
        pool = make_pool()
        graph = make_graph()
        try:
            pool.infer(graph)
            assert graph in pool
            record = self.fire("evict_tenant", pool, graph)
            assert "evicted" in record.note
            assert graph not in pool
            again = self.fire("evict_tenant", pool, graph)
            assert "not cached" in again.note
        finally:
            pool.clear()

    def test_delay_deltas_marks_the_schedule(self):
        pool = make_pool()
        schedule = DeltaSchedule()
        self.fire("delay_deltas", pool, make_graph(), schedule=schedule,
                  tick=4)
        assert schedule.is_delayed(0, 4)
        assert not schedule.is_delayed(0, 5)
        assert not schedule.is_delayed(1, 4)
