"""Tests for the MapReduce engine, spill storage and cluster cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.mapreduce import MapReduceEngine, MapReduceJob, TaskContext
from repro.batch.storage import RecordStore, serialized_size
from repro.cluster.cost_model import CostModel, gnn_layer_compute_units
from repro.cluster.metrics import (
    InstanceMetrics,
    MetricsCollector,
    estimate_payload_bytes,
    message_bytes,
    tensor_bytes,
)
from repro.cluster.resources import ClusterSpec, OutOfMemoryError, WorkerSpec


class WordCountJob(MapReduceJob):
    def map(self, key, value, context):
        for word in value.split():
            yield word, 1

    def reduce(self, key, values, context):
        yield key, sum(values)


class CombiningWordCountJob(WordCountJob):
    has_combiner = True

    def combine(self, key, values, context):
        yield key, sum(values)


class PartitionSumJob(MapReduceJob):
    uses_partition_reduce = True

    def map(self, key, value, context):
        yield key % 3, value

    def reduce_partition(self, groups, context):
        for key, values in groups:
            context.add_compute(len(values))
            yield key, sum(values)


DOCUMENTS = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog jumps"),
    (3, "brown dog brown fox"),
]


class TestMapReduceEngine:
    def test_wordcount_correct(self):
        engine = MapReduceEngine(num_mappers=2, num_reducers=2)
        output, stats = engine.run(WordCountJob(), DOCUMENTS, phase="wc")
        counts = dict(output)
        assert counts["the"] == 3
        assert counts["brown"] == 3
        assert counts["jumps"] == 1
        assert stats.map_output_records == 15

    def test_results_independent_of_worker_count(self):
        small = dict(MapReduceEngine(1, 1).run(WordCountJob(), DOCUMENTS)[0])
        large = dict(MapReduceEngine(4, 7).run(WordCountJob(), DOCUMENTS)[0])
        assert small == large

    def test_combiner_reduces_shuffle_records_but_not_results(self):
        plain_engine = MapReduceEngine(2, 2)
        plain, plain_stats = plain_engine.run(WordCountJob(), DOCUMENTS)
        combined_engine = MapReduceEngine(2, 2)
        combined, combined_stats = combined_engine.run(CombiningWordCountJob(), DOCUMENTS)
        assert dict(plain) == dict(combined)
        assert combined_stats.map_output_records < plain_stats.map_output_records

    def test_partition_reduce(self):
        records = [(i, i) for i in range(30)]
        output, _ = MapReduceEngine(3, 3).run(PartitionSumJob(), records)
        totals = dict(output)
        assert sum(totals.values()) == sum(range(30))

    def test_metrics_recorded_for_both_phases(self):
        metrics = MetricsCollector()
        engine = MapReduceEngine(2, 3, metrics=metrics)
        engine.run(WordCountJob(), DOCUMENTS, phase="job")
        assert "job/map" in metrics.phases()
        assert "job/reduce" in metrics.phases()
        assert metrics.total("records_out", "job/map") == 15
        assert metrics.total("records_in", "job/reduce") == 15

    def test_custom_partition_fn(self):
        engine = MapReduceEngine(1, 4, partition_fn=lambda key, n: 0)
        metrics = engine.metrics
        engine.run(WordCountJob(), DOCUMENTS, phase="p")
        # Everything lands on reducer 0.
        busy = [m for m in metrics.instances("p/reduce") if m.records_in > 0]
        assert len(busy) == 1 and busy[0].instance_id == 0

    def test_empty_input(self):
        output, stats = MapReduceEngine(2, 2).run(WordCountJob(), [])
        assert output == []
        assert stats.map_output_records == 0

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            MapReduceEngine(0, 2)
        with pytest.raises(ValueError):
            MapReduceEngine(2, 0)

    def test_run_chained(self):
        class Add(MapReduceJob):
            def map(self, key, value, context):
                yield key, value

            def reduce(self, key, values, context):
                yield key, sum(values) + 1

        records = [(0, 0)]
        out = MapReduceEngine(1, 1).run_chained([Add(), Add()], records)
        assert out == [(0, 2)]

    def test_spill_to_disk_roundtrip(self):
        engine = MapReduceEngine(2, 2, spill_to_disk=True)
        output, _ = engine.run(WordCountJob(), DOCUMENTS)
        assert dict(output)["the"] == 3


class TestRecordStore:
    def test_memory_mode(self):
        store = RecordStore()
        store.extend([(1, "a"), (2, "b")])
        assert len(store) == 2
        assert list(store) == [(1, "a"), (2, "b")]
        assert store.bytes_written > 0

    def test_disk_mode_roundtrip_and_cleanup(self):
        import os
        store = RecordStore(spill_to_disk=True)
        payload = (7, np.arange(10.0))
        store.append(payload)
        items = list(store)
        assert items[0][0] == 7
        np.testing.assert_allclose(items[0][1], np.arange(10.0))
        path = store._path
        store.close()
        assert not os.path.exists(path)

    def test_context_manager(self):
        with RecordStore(spill_to_disk=True) as store:
            store.append(("x", 1))
            assert len(store) == 1

    def test_serialized_size_monotonic(self):
        assert serialized_size((1, np.zeros(100))) > serialized_size((1, np.zeros(10)))


class TestMetricsCollector:
    def test_record_and_totals(self):
        collector = MetricsCollector()
        collector.record("phase_a", 0, compute_units=10, bytes_in=100)
        collector.record("phase_a", 0, compute_units=5, bytes_in=50)
        collector.record("phase_a", 1, compute_units=1)
        assert collector.total("compute_units", "phase_a") == 16
        assert collector.get("phase_a", 0).bytes_in == 150

    def test_peak_memory_takes_max(self):
        collector = MetricsCollector()
        collector.record("p", 0, peak_memory_bytes=100)
        collector.record("p", 0, peak_memory_bytes=40)
        assert collector.get("p", 0).peak_memory_bytes == 100

    def test_per_instance_accumulates_across_phases(self):
        collector = MetricsCollector()
        collector.record("a", 0, bytes_in=10)
        collector.record("b", 0, bytes_in=15)
        collector.record("b", 1, bytes_in=3)
        per_instance = collector.per_instance("bytes_in")
        assert per_instance[0] == 25
        assert per_instance[1] == 3

    def test_phase_order_preserved(self):
        collector = MetricsCollector()
        collector.record("z_first", 0)
        collector.record("a_second", 0)
        assert collector.phases() == ["z_first", "a_second"]

    def test_merge_from(self):
        a = MetricsCollector()
        a.record("p", 0, bytes_in=5)
        b = MetricsCollector()
        b.record("p", 0, bytes_in=7)
        b.record("q", 1, records_in=2)
        a.merge_from(b)
        assert a.get("p", 0).bytes_in == 12
        assert a.get("q", 1).records_in == 2

    def test_size_estimators(self):
        assert estimate_payload_bytes(np.zeros((4, 4))) == 128
        assert estimate_payload_bytes({"a": 1.0, "b": np.zeros(2)}) > 16
        assert estimate_payload_bytes(None) == 0.0
        assert tensor_bytes((10, 10)) == 800
        assert message_bytes(10, 4) == 10 * (4 * 8 + 8 + 16)


class TestCostModel:
    def test_instance_seconds_composition(self):
        worker = WorkerSpec(cpu_cores=2, compute_units_per_second=100,
                            network_bandwidth_bytes_per_second=1000,
                            disk_bandwidth_bytes_per_second=500)
        model = CostModel(ClusterSpec(num_workers=1, worker=worker))
        metric = InstanceMetrics(phase="p", instance_id=0, compute_units=400,
                                 bytes_in=2000, bytes_out=1000, disk_bytes=250)
        # 400/(2*100) + 2000/1000 + 250/500 = 2 + 2 + 0.5
        assert model.instance_seconds(metric) == pytest.approx(4.5)

    def test_wall_clock_is_straggler_sum_over_phases(self):
        collector = MetricsCollector()
        collector.record("s0", 0, compute_units=100)
        collector.record("s0", 1, compute_units=400)
        collector.record("s1", 0, compute_units=200)
        worker = WorkerSpec(cpu_cores=1, compute_units_per_second=100)
        summary = CostModel(ClusterSpec(2, worker)).summarize(collector)
        assert summary.wall_clock_seconds == pytest.approx(4.0 + 2.0)
        assert summary.phases[0].straggler_instance == 1

    def test_cpu_minutes_counts_all_instances(self):
        collector = MetricsCollector()
        collector.record("s0", 0, compute_units=600)
        collector.record("s0", 1, compute_units=600)
        worker = WorkerSpec(cpu_cores=2, compute_units_per_second=10)
        summary = CostModel(ClusterSpec(2, worker)).summarize(collector)
        # each instance busy 30 s, 2 cores each -> 120 core-seconds = 2 cpu-minutes
        assert summary.cpu_minutes == pytest.approx(2.0)

    def test_oom_reported(self):
        collector = MetricsCollector()
        collector.record("s0", 0, peak_memory_bytes=100e9)
        summary = CostModel(ClusterSpec(1, WorkerSpec(memory_bytes=1e9))).summarize(collector)
        assert summary.oom
        assert summary.oom_instances

    def test_oom_raises_when_checked(self):
        collector = MetricsCollector()
        collector.record("s0", 3, peak_memory_bytes=100e9)
        model = CostModel(ClusterSpec(4, WorkerSpec(memory_bytes=1e9)))
        with pytest.raises(OutOfMemoryError):
            model.summarize(collector, check_memory=True)

    def test_instance_times_helper(self):
        collector = MetricsCollector()
        collector.record("a", 0, compute_units=100)
        collector.record("b", 0, compute_units=100)
        worker = WorkerSpec(cpu_cores=1, compute_units_per_second=100)
        summary = CostModel(ClusterSpec(1, worker)).summarize(collector)
        assert summary.instance_times()[0] == pytest.approx(2.0)
        assert summary.instance_times("a")[0] == pytest.approx(1.0)

    def test_gnn_layer_compute_units(self):
        cost = gnn_layer_compute_units(num_messages=10, message_dim=4, num_nodes=5,
                                       in_dim=3, out_dim=2)
        assert cost == 10 * 4 + 5 * 3 * 2

    def test_cluster_presets(self):
        assert ClusterSpec.pregel_default(10).total_cores == 20
        assert ClusterSpec.mapreduce_default(5).worker.memory_bytes == pytest.approx(2e9)
        assert ClusterSpec.traditional_default(3).worker.cpu_cores == 10
