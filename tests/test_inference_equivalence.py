"""The core correctness property of InferTurbo: distributed full-graph inference
produces exactly the same scores as a single-machine forward pass over the whole
graph, for every architecture, backend and strategy combination — and therefore
identical predictions at every run (the paper's consistency requirement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.gnn.signature import export_signature
from repro.graph.generators import labeled_community_graph, powerlaw_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.tables import graph_to_tables
from repro.inference import InferTurbo, InferenceConfig, StrategyConfig
from repro.tensor.tensor import Tensor, no_grad


def reference_scores(model, graph: Graph) -> np.ndarray:
    """Single-machine full-graph forward pass (ground truth)."""
    model.eval()
    with no_grad():
        edge_features = None if graph.edge_features is None else Tensor(graph.edge_features)
        return model.forward(Tensor(graph.node_features), graph.src, graph.dst,
                             edge_features=edge_features, num_nodes=graph.num_nodes).data


ALL_STRATEGIES = {
    "base": StrategyConfig(partial_gather=False, broadcast=False, shadow_nodes=False),
    "partial": StrategyConfig(partial_gather=True),
    "broadcast": StrategyConfig(partial_gather=False, broadcast=True, hub_threshold_override=15),
    "shadow": StrategyConfig(partial_gather=False, shadow_nodes=True, hub_threshold_override=15),
    "all": StrategyConfig(partial_gather=True, broadcast=True, shadow_nodes=True,
                          hub_threshold_override=15),
}


@pytest.fixture(scope="module")
def community():
    return labeled_community_graph(num_nodes=180, num_classes=4, feature_dim=10,
                                   avg_degree=7.0, seed=5)


@pytest.fixture(scope="module")
def skewed():
    return powerlaw_graph(num_nodes=400, avg_degree=6.0, skew="out", feature_dim=8,
                          num_classes=3, seed=9)


class TestEquivalence:
    @pytest.mark.parametrize("arch", ["sage", "gat", "gcn"])
    @pytest.mark.parametrize("backend", ["pregel", "mapreduce"])
    def test_matches_reference_base_strategies(self, community, arch, backend):
        model = build_model(arch, community.feature_dim, 16, 4, num_layers=2, seed=1)
        expected = reference_scores(model, community)
        engine = InferTurbo(model, InferenceConfig(backend=backend, num_workers=4))
        result = engine.run(community)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    @pytest.mark.parametrize("strategy_name", list(ALL_STRATEGIES))
    @pytest.mark.parametrize("backend", ["pregel", "mapreduce"])
    def test_strategies_do_not_change_results_sage(self, skewed, strategy_name, backend):
        model = build_model("sage", skewed.feature_dim, 16, 3, num_layers=2, seed=2)
        expected = reference_scores(model, skewed)
        config = InferenceConfig(backend=backend, num_workers=4,
                                 strategies=ALL_STRATEGIES[strategy_name])
        result = InferTurbo(model, config).run(skewed)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    @pytest.mark.parametrize("strategy_name", ["broadcast", "shadow", "all"])
    def test_strategies_do_not_change_results_gat(self, skewed, strategy_name):
        """GAT cannot use partial-gather, but broadcast/shadow must stay exact."""
        model = build_model("gat", skewed.feature_dim, 16, 3, num_layers=2, seed=3)
        expected = reference_scores(model, skewed)
        config = InferenceConfig(backend="pregel", num_workers=4,
                                 strategies=ALL_STRATEGIES[strategy_name])
        result = InferTurbo(model, config).run(skewed)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_three_layer_model(self, community):
        model = build_model("sage", community.feature_dim, 12, 4, num_layers=3, seed=4)
        expected = reference_scores(model, community)
        result = InferTurbo(model, InferenceConfig(backend="pregel", num_workers=3)).run(community)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)
        assert result.num_supersteps == 4

    def test_single_layer_model(self, community):
        model = build_model("gcn", community.feature_dim, 12, 4, num_layers=1, seed=4)
        expected = reference_scores(model, community)
        result = InferTurbo(model, InferenceConfig(backend="mapreduce", num_workers=2)).run(community)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_edge_features_respected(self):
        graph = labeled_community_graph(num_nodes=120, num_classes=3, feature_dim=6,
                                        avg_degree=5.0, edge_feature_dim=4, seed=8)
        model = build_model("sage", 6, 12, 3, num_layers=2, edge_dim=4, seed=5)
        expected = reference_scores(model, graph)
        for backend in ("pregel", "mapreduce"):
            result = InferTurbo(model, InferenceConfig(backend=backend, num_workers=3)).run(graph)
            np.testing.assert_allclose(result.scores, expected, atol=1e-9,
                                       err_msg=f"backend={backend}")

    def test_isolated_nodes_handled(self):
        """Nodes with no in- or out-edges still receive predictions."""
        graph = Graph(src=np.array([0, 1]), dst=np.array([1, 2]),
                      node_features=np.random.default_rng(0).normal(size=(6, 5)),
                      labels=np.zeros(6, dtype=np.int64), num_nodes=6)
        model = build_model("sage", 5, 8, 2, num_layers=2, seed=0)
        expected = reference_scores(model, graph)
        for backend in ("pregel", "mapreduce"):
            result = InferTurbo(model, InferenceConfig(backend=backend, num_workers=3)).run(graph)
            np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_star_graph_extreme_hub(self):
        star = star_graph(300, direction="out", seed=0)
        model = build_model("sage", star.feature_dim, 8, 2, num_layers=2, seed=1)
        expected = reference_scores(model, star)
        config = InferenceConfig(backend="pregel", num_workers=4,
                                 strategies=StrategyConfig(partial_gather=True, broadcast=True,
                                                           shadow_nodes=True,
                                                           hub_threshold_override=20))
        result = InferTurbo(model, config).run(star)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_more_workers_than_nodes(self):
        graph = labeled_community_graph(num_nodes=10, num_classes=2, feature_dim=4,
                                        avg_degree=3.0, seed=3)
        model = build_model("sage", 4, 8, 2, seed=0)
        expected = reference_scores(model, graph)
        result = InferTurbo(model, InferenceConfig(backend="pregel", num_workers=16)).run(graph)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_runs_from_signature(self, community):
        model = build_model("sage", community.feature_dim, 16, 4, seed=6)
        signature = export_signature(model)
        expected = reference_scores(model, community)
        result = InferTurbo(signature, InferenceConfig(backend="pregel", num_workers=4)).run(community)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_runs_from_tables(self, community):
        model = build_model("gcn", community.feature_dim, 16, 4, seed=7)
        expected = reference_scores(model, community)
        tables = graph_to_tables(community)
        result = InferTurbo(model, InferenceConfig(backend="mapreduce", num_workers=4)).run(tables)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_rejects_bad_table_pair(self, community):
        model = build_model("sage", community.feature_dim, 8, 4, seed=0)
        with pytest.raises(TypeError):
            InferTurbo(model).run(("not", "tables"))

    def test_embeddings_returned_when_requested(self, community):
        model = build_model("sage", community.feature_dim, 16, 4, seed=1)
        config = InferenceConfig(backend="pregel", num_workers=4, collect_embeddings=True)
        result = InferTurbo(model, config).run(community)
        assert result.embeddings is not None
        assert result.embeddings.shape == (community.num_nodes, 16)

    def test_predicted_classes_helper(self, community):
        model = build_model("sage", community.feature_dim, 16, 4, seed=1)
        result = InferTurbo(model, InferenceConfig(num_workers=4)).run(community)
        predictions = result.predicted_classes()
        assert predictions.shape == (community.num_nodes,)
        np.testing.assert_array_equal(predictions, result.scores.argmax(axis=-1))


class TestConsistency:
    def test_repeated_runs_identical(self, skewed):
        """Full-graph inference must be bit-identical across runs (Fig. 7 claim)."""
        model = build_model("sage", skewed.feature_dim, 16, 3, seed=11)
        config = InferenceConfig(backend="pregel", num_workers=4,
                                 strategies=StrategyConfig(partial_gather=True))
        first = InferTurbo(model, config).run(skewed).scores
        second = InferTurbo(model, config).run(skewed).scores
        np.testing.assert_array_equal(first, second)

    def test_worker_count_does_not_change_results(self, community):
        model = build_model("sage", community.feature_dim, 16, 4, seed=12)
        results = []
        for workers in (1, 3, 8):
            config = InferenceConfig(backend="pregel", num_workers=workers,
                                     strategies=StrategyConfig(partial_gather=True))
            results.append(InferTurbo(model, config).run(community).scores)
        np.testing.assert_allclose(results[0], results[1], atol=1e-9)
        np.testing.assert_allclose(results[1], results[2], atol=1e-9)

    def test_backends_agree_with_each_other(self, community):
        model = build_model("gat", community.feature_dim, 16, 4, seed=13)
        pregel = InferTurbo(model, InferenceConfig(backend="pregel", num_workers=4)).run(community)
        mapreduce = InferTurbo(model, InferenceConfig(backend="mapreduce", num_workers=4)).run(community)
        np.testing.assert_allclose(pregel.scores, mapreduce.scores, atol=1e-9)


class TestConfigValidation:
    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            InferenceConfig(backend="spark-on-mars")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            InferenceConfig(num_workers=0)

    def test_default_cluster_matches_backend(self):
        pregel_config = InferenceConfig(backend="pregel", num_workers=4)
        mapreduce_config = InferenceConfig(backend="mapreduce", num_workers=4)
        assert pregel_config.cluster.worker.memory_bytes > mapreduce_config.cluster.worker.memory_bytes

    def test_cluster_worker_count_mismatch_rejected(self):
        """A user-supplied ClusterSpec is never silently rebuilt — mismatches raise."""
        from repro.cluster.resources import ClusterSpec, WorkerSpec

        with pytest.raises(ValueError, match="does not match"):
            InferenceConfig(num_workers=6,
                            cluster=ClusterSpec(num_workers=2, worker=WorkerSpec()))

    def test_matching_user_cluster_kept(self):
        from repro.cluster.resources import ClusterSpec, WorkerSpec

        worker = WorkerSpec(cpu_cores=4)
        config = InferenceConfig(num_workers=6,
                                 cluster=ClusterSpec(num_workers=6, worker=worker))
        assert config.cluster.worker is worker

    def test_strategy_describe(self):
        assert StrategyConfig(partial_gather=False).describe() == "base"
        described = StrategyConfig(partial_gather=True, broadcast=True, shadow_nodes=True).describe()
        assert "partial-gather" in described and "broadcast" in described
