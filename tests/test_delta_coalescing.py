"""Deferred-delta coalescing: merged application ≡ eager application.

The contract under test: ``apply_delta(..., defer=True)`` buffers deltas and
the next ``infer()`` / ``flush_deltas()`` applies **one merged delta**, whose
resulting graph arrays — and therefore scores — are *byte/bit-identical* to
applying the same deltas eagerly one by one.  Property-tested on random
power-law graphs with mixed feature/edge deltas, overlapping feature writes
(last-write-wins) and removals that cancel earlier appends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    DeltaBuffer,
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StalePlanError,
    StrategyConfig,
)
from repro.inference.delta import apply_delta_to_graph


def make_graph(seed: int, num_nodes: int = 500):
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=6.0, skew="out",
                          feature_dim=8, num_classes=4, seed=seed)


def make_config(backend: str = "pregel", **strategy_kwargs) -> InferenceConfig:
    kwargs = dict(partial_gather=True, broadcast=True, shadow_nodes=True,
                  hub_threshold_override=20)
    kwargs.update(strategy_kwargs)
    return InferenceConfig(backend=backend, num_workers=4,
                           strategies=StrategyConfig(**kwargs))


def make_session(backend: str = "pregel", **strategy_kwargs) -> InferenceSession:
    model = build_model("gcn", 8, 16, 4, num_layers=2, seed=0)
    return InferenceSession(model, make_config(backend, **strategy_kwargs))


def random_mixed_delta(rng: np.random.Generator, num_nodes: int,
                       current_num_edges: int, features: bool = True,
                       edges: bool = True) -> GraphDelta:
    kwargs = {}
    if features:
        count = int(rng.integers(1, 12))
        kwargs["node_ids"] = rng.choice(num_nodes, size=count, replace=False)
        kwargs["node_features"] = rng.standard_normal((count, 8))
    if edges:
        add = int(rng.integers(0, 5))
        if add:
            kwargs["added_src"] = rng.integers(0, num_nodes, size=add)
            kwargs["added_dst"] = rng.integers(0, num_nodes, size=add)
        remove = int(rng.integers(0, 4))
        if remove and current_num_edges > remove:
            kwargs["removed_edge_ids"] = rng.choice(current_num_edges, size=remove,
                                                    replace=False)
    return GraphDelta(**kwargs)


# --------------------------------------------------------------------------- #
# buffer-level exactness
# --------------------------------------------------------------------------- #
class TestDeltaBufferMerge:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_merged_graph_arrays_byte_identical_to_sequential(self, seed):
        rng = np.random.default_rng(seed)
        merged_graph = make_graph(seed)
        sequential_graph = make_graph(seed)
        buffer = DeltaBuffer(merged_graph)
        current_edges = sequential_graph.num_edges
        for _ in range(6):
            delta = random_mixed_delta(rng, merged_graph.num_nodes, current_edges)
            buffer.add(delta)
            apply_delta_to_graph(sequential_graph, GraphDelta(
                node_ids=delta.node_ids, node_features=delta.node_features,
                added_src=delta.added_src, added_dst=delta.added_dst,
                removed_edge_ids=delta.removed_edge_ids))
            current_edges = sequential_graph.num_edges
        apply_delta_to_graph(merged_graph, buffer.merge())
        np.testing.assert_array_equal(merged_graph.src, sequential_graph.src)
        np.testing.assert_array_equal(merged_graph.dst, sequential_graph.dst)
        np.testing.assert_array_equal(merged_graph.node_features,
                                      sequential_graph.node_features)

    def test_last_feature_write_wins(self):
        graph = make_graph(5)
        buffer = DeltaBuffer(graph)
        buffer.add(GraphDelta(node_ids=np.array([3, 7]),
                              node_features=np.ones((2, 8))))
        buffer.add(GraphDelta(node_ids=np.array([7, 9]),
                              node_features=np.full((2, 8), 2.0)))
        merged = buffer.merge()
        np.testing.assert_array_equal(merged.node_ids, [3, 7, 9])
        np.testing.assert_array_equal(merged.node_features[1], np.full(8, 2.0))

    def test_removal_cancels_buffered_append(self):
        graph = make_graph(6)
        base_edges = graph.num_edges
        buffer = DeltaBuffer(graph)
        buffer.add(GraphDelta(added_src=np.array([0, 1]), added_dst=np.array([2, 3])))
        # Virtual edge list = base edges then the two appends; remove the
        # first appended edge by its virtual position.
        buffer.add(GraphDelta(removed_edge_ids=np.array([base_edges])))
        merged = buffer.merge()
        assert merged.removed_edge_ids is None
        np.testing.assert_array_equal(merged.added_src, [1])
        np.testing.assert_array_equal(merged.added_dst, [3])

    def test_cancelling_deltas_merge_to_empty(self):
        graph = make_graph(7)
        buffer = DeltaBuffer(graph)
        buffer.add(GraphDelta(added_src=np.array([0]), added_dst=np.array([1])))
        buffer.add(GraphDelta(removed_edge_ids=np.array([graph.num_edges])))
        assert buffer.merge().is_empty and not buffer.is_empty

    @pytest.mark.parametrize("seed", [9, 10, 11, 12])
    def test_interleaved_edge_feature_cancellation(self, seed):
        # Property: on a graph *with edge features*, interleaved appends and
        # removals — including removals that cancel still-buffered appends —
        # merge to a delta whose application is byte-identical to sequential
        # application, with every cancelled edge's feature row dropped
        # alongside its endpoints.
        rng = np.random.default_rng(seed)
        merged_graph = make_graph(seed)
        merged_graph.edge_features = rng.standard_normal((merged_graph.num_edges, 3))
        sequential_graph = make_graph(seed)
        sequential_graph.edge_features = merged_graph.edge_features.copy()
        buffer = DeltaBuffer(merged_graph)
        current_edges = sequential_graph.num_edges
        for step in range(8):
            kwargs = {}
            add = int(rng.integers(0, 4)) if step % 2 == 0 else 0
            if add:
                kwargs["added_src"] = rng.integers(0, merged_graph.num_nodes, size=add)
                kwargs["added_dst"] = rng.integers(0, merged_graph.num_nodes, size=add)
                kwargs["added_edge_features"] = rng.standard_normal((add, 3))
            remove = int(rng.integers(1, 4)) if step % 2 == 1 else 0
            if remove:
                # Bias removals toward the tail so buffered appends are hit
                # (the virtual edge list keeps appends last).
                tail = min(current_edges, 12)
                kwargs["removed_edge_ids"] = (current_edges - 1 - rng.choice(
                    tail, size=min(remove, tail), replace=False))
            if not kwargs:
                continue
            delta = GraphDelta(**kwargs)
            buffer.add(delta)
            apply_delta_to_graph(sequential_graph, GraphDelta(
                added_src=delta.added_src, added_dst=delta.added_dst,
                added_edge_features=delta.added_edge_features,
                removed_edge_ids=delta.removed_edge_ids))
            current_edges = sequential_graph.num_edges
        merged = buffer.merge()
        if merged.added_src is not None:
            assert merged.added_edge_features is not None
            assert merged.added_edge_features.shape[0] == merged.added_src.size
        apply_delta_to_graph(merged_graph, merged)
        np.testing.assert_array_equal(merged_graph.src, sequential_graph.src)
        np.testing.assert_array_equal(merged_graph.dst, sequential_graph.dst)
        np.testing.assert_array_equal(merged_graph.edge_features,
                                      sequential_graph.edge_features)

    def test_removal_cancels_append_with_edge_features(self):
        # The cancelled append's feature row must drop *with its edge*: the
        # surviving appended edge keeps its own row, not the cancelled one's.
        graph = make_graph(13)
        rng = np.random.default_rng(13)
        graph.edge_features = rng.standard_normal((graph.num_edges, 3))
        base_edges = graph.num_edges
        buffer = DeltaBuffer(graph)
        rows = np.arange(6, dtype=np.float64).reshape(2, 3)
        buffer.add(GraphDelta(added_src=np.array([0, 1]),
                              added_dst=np.array([2, 3]),
                              added_edge_features=rows))
        buffer.add(GraphDelta(removed_edge_ids=np.array([base_edges])))
        merged = buffer.merge()
        np.testing.assert_array_equal(merged.added_src, [1])
        np.testing.assert_array_equal(merged.added_edge_features, rows[1:])

    def test_add_validates_against_virtual_state(self):
        graph = make_graph(8)
        buffer = DeltaBuffer(graph)
        with pytest.raises(ValueError, match="removed_edge_ids"):
            buffer.add(GraphDelta(removed_edge_ids=np.array([graph.num_edges])))
        buffer.add(GraphDelta(added_src=np.array([0]), added_dst=np.array([1])))
        buffer.add(GraphDelta(removed_edge_ids=np.array([graph.num_edges])))  # now valid
        with pytest.raises(ValueError, match="width"):
            buffer.add(GraphDelta(node_ids=np.array([0]),
                                  node_features=np.zeros((1, 3))))
        with pytest.raises(ValueError, match="outside"):
            buffer.add(GraphDelta(added_src=np.array([graph.num_nodes]),
                                  added_dst=np.array([0])))


# --------------------------------------------------------------------------- #
# session-level bit-identity: deferred flush vs eager application
# --------------------------------------------------------------------------- #
class TestDeferredSessions:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_deferred_scores_bit_identical_to_eager(self, seed):
        rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
        deferred = make_session()
        eager = make_session()
        graph_a, graph_b = make_graph(seed), make_graph(seed)
        deferred.prepare(graph_a)
        deferred.infer()
        eager.prepare(graph_b)
        eager.infer()
        for _ in range(4):
            delta_a = random_mixed_delta(rng_a, graph_a.num_nodes,
                                         graph_a.num_edges, edges=False)
            delta_b = random_mixed_delta(rng_b, graph_b.num_nodes,
                                         graph_b.num_edges, edges=False)
            deferred.apply_delta(delta_a, defer=True)
            eager.apply_delta(delta_b)
        assert deferred.num_pending_deltas == 4
        incremental = deferred.infer(mode="incremental").scores
        assert deferred.num_pending_deltas == 0
        np.testing.assert_array_equal(incremental,
                                      eager.infer(mode="incremental").scores)

    def test_deferred_edge_deltas_match_eager(self):
        # Edge deltas patch in place under shadow nodes while the hub set
        # holds and re-plan transparently when it does not; either way the
        # merged flush must land the same graph state — and scores — the
        # eager path reaches step by step.
        rng = np.random.default_rng(31)
        deferred = make_session()
        eager = make_session()
        graph_a, graph_b = make_graph(31), make_graph(31)
        deferred.prepare(graph_a)
        eager.prepare(graph_b)
        for _ in range(3):
            # One delta fed to both paths: its removal positions index the
            # eager graph's live edge list, which is exactly the deferred
            # buffer's virtual edge list at the same point in the sequence.
            delta = random_mixed_delta(rng, graph_b.num_nodes, graph_b.num_edges)
            deferred.apply_delta(delta, defer=True)
            eager.apply_delta(delta)
        np.testing.assert_array_equal(deferred.infer().scores,
                                      eager.infer().scores)
        np.testing.assert_array_equal(graph_a.src, graph_b.src)

    def test_explicit_flush(self):
        session = make_session()
        graph = make_graph(33)
        session.prepare(graph)
        session.infer()
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.ones((1, 8))), defer=True)
        outcome = session.flush_deltas()
        assert outcome.in_place and not outcome.deferred
        assert session.num_pending_deltas == 0
        assert session.flush_deltas().reason == "no pending deltas"

    def test_eager_apply_flushes_pending_first(self):
        # Sequence semantics: an eager delta describes the state *after* the
        # buffered ones; both writes to node 1 must land in order.
        session = make_session()
        graph = make_graph(35)
        session.prepare(graph)
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.full((1, 8), 5.0)),
                            defer=True)
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.full((1, 8), 9.0)))
        assert session.num_pending_deltas == 0
        np.testing.assert_array_equal(graph.node_features[1], np.full(8, 9.0))

    def test_prepare_refuses_while_pending(self):
        session = make_session()
        graph = make_graph(37)
        session.prepare(graph)
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.ones((1, 8))), defer=True)
        with pytest.raises(RuntimeError, match="deferred delta"):
            session.prepare(graph)
        assert session.discard_pending_deltas() == 1
        session.prepare(graph)                     # fine after discarding

    def test_defer_on_stale_graph_still_raises(self):
        session = make_session()
        graph = make_graph(39)
        session.prepare(graph)
        graph.node_features[0] += 1.0              # out of band
        with pytest.raises(StalePlanError):
            session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                           node_features=np.ones((1, 8))),
                                defer=True)

    def test_flush_detects_mutation_after_defer(self):
        # The flush must not launder an out-of-band mutation made *after* the
        # deltas were deferred: applying the merged delta would refresh the
        # fingerprint over the foreign change and serve wrong scores.
        session = make_session()
        graph = make_graph(41)
        session.prepare(graph)
        session.infer()
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.ones((1, 8))), defer=True)
        graph.node_features[7] += 100.0            # out of band, post-defer
        with pytest.raises(StalePlanError):
            session.infer()
        # The buffer was consumed; recovery via re-plan works.
        assert session.num_pending_deltas == 0
        session.prepare(graph)
        session.infer()

    def test_failed_first_defer_leaves_no_stale_buffer(self):
        # A rejected first deferred delta must not pin an empty buffer to the
        # current edge-list snapshot: a later eager edge delta would shift
        # positions underneath it and corrupt the next deferred removal.
        session = make_session(shadow_nodes=False)
        graph = make_graph(43)
        session.prepare(graph)
        with pytest.raises(ValueError, match="width"):
            session.apply_delta(GraphDelta(node_ids=np.array([0]),
                                           node_features=np.zeros((1, 3))),
                                defer=True)
        assert session.num_pending_deltas == 0
        # Grow the graph eagerly, then defer a removal of the last (just
        # appended) edge — a position only valid against the *current* edge
        # list.  A stale buffer snapshotted before the append would either
        # reject the position or translate it onto the wrong edge.
        session.apply_delta(GraphDelta(added_src=np.array([0, 1]),
                                       added_dst=np.array([2, 3])))
        expected_src = graph.src[:-1].copy()       # everything but the 1->3 append
        expected_dst = graph.dst[:-1].copy()
        session.apply_delta(
            GraphDelta(removed_edge_ids=np.array([graph.num_edges - 1])),
            defer=True)
        session.flush_deltas()
        np.testing.assert_array_equal(graph.src, expected_src)
        np.testing.assert_array_equal(graph.dst, expected_dst)

    def test_deferred_mapreduce_matches_eager(self):
        rng_a, rng_b = np.random.default_rng(43), np.random.default_rng(43)
        deferred = make_session(backend="mapreduce")
        eager = make_session(backend="mapreduce")
        graph_a, graph_b = make_graph(43, num_nodes=300), make_graph(43, num_nodes=300)
        deferred.prepare(graph_a)
        deferred.infer()
        eager.prepare(graph_b)
        eager.infer()
        for _ in range(3):
            delta_a = random_mixed_delta(rng_a, 300, graph_a.num_edges, edges=False)
            delta_b = random_mixed_delta(rng_b, 300, graph_b.num_edges, edges=False)
            deferred.apply_delta(delta_a, defer=True)
            eager.apply_delta(delta_b)
        np.testing.assert_array_equal(deferred.infer().scores,
                                      eager.infer().scores)
