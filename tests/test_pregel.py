"""Tests for the Pregel-like graph processing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.metrics import MetricsCollector
from repro.graph.graph import Graph
from repro.pregel.aggregators import DictUnionAggregator, MaxAggregator, SumAggregator
from repro.pregel.combiners import (
    MaxCombiner,
    MeanCombiner,
    SumCombiner,
    combiner_for_aggregate_kind,
)
from repro.pregel.engine import PregelEngine
from repro.pregel.vertex import MessageBlock, VertexProgram


def ring_graph(num_nodes: int) -> Graph:
    src = np.arange(num_nodes)
    dst = (src + 1) % num_nodes
    return Graph(src, dst, num_nodes=num_nodes)


class TokenPassProgram(VertexProgram):
    """Vertex 0 emits a token that travels around a directed ring."""

    def initial_value(self, vertex_id: int):
        return 0

    def compute(self, vertex, messages):
        if vertex.superstep == 0:
            if vertex.vertex_id == 0:
                vertex.send_message_to_all_neighbors(1)
        elif messages:
            vertex.value = vertex.value + sum(messages)
            if vertex.superstep < vertex.num_vertices:
                vertex.send_message_to_all_neighbors(1)
        vertex.vote_to_halt()


class DegreeCountProgram(VertexProgram):
    """Each vertex sends 1 to its out-neighbours; values become in-degrees."""

    def initial_value(self, vertex_id: int):
        return 0

    def compute(self, vertex, messages):
        if vertex.superstep == 0:
            vertex.send_message_to_all_neighbors(1)
        else:
            vertex.value = sum(messages)
        vertex.vote_to_halt()


class PageRankProgram(VertexProgram):
    """Classic PageRank with a fixed number of iterations."""

    def __init__(self, num_iterations: int = 10, damping: float = 0.85) -> None:
        self.num_iterations = num_iterations
        self.damping = damping

    def initial_value(self, vertex_id: int):
        return 1.0

    def compute(self, vertex, messages):
        if vertex.superstep > 0:
            rank = (1 - self.damping) + self.damping * sum(messages)
            vertex.value = rank
        if vertex.superstep < self.num_iterations:
            out_edges = vertex.out_edges()
            if out_edges.size:
                vertex.send_message_to_all_neighbors(vertex.value / out_edges.size)
        vertex.vote_to_halt()


class AggregatingProgram(VertexProgram):
    """Every vertex contributes its id to a global max aggregator."""

    def initial_value(self, vertex_id: int):
        return None

    def compute(self, vertex, messages):
        if vertex.superstep == 0:
            vertex.aggregate("max_id", float(vertex.vertex_id))
            vertex.send_message(vertex.vertex_id, 0.0)  # keep everyone alive one step
        else:
            vertex.value = vertex.get_aggregated("max_id")
        vertex.vote_to_halt()


class TestPerVertexPrograms:
    def test_degree_count_matches_graph(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=4)
        result = engine.run(DegreeCountProgram())
        in_degrees = small_graph.in_degrees()
        for node in range(small_graph.num_nodes):
            assert result.vertex_values[node] == in_degrees[node]

    def test_token_travels_ring(self):
        graph = ring_graph(6)
        engine = PregelEngine(graph, num_workers=3)
        result = engine.run(TokenPassProgram(), max_supersteps=10)
        # Every vertex except the emitter receives the token exactly once.
        received = [result.vertex_values[node] for node in range(1, 6)]
        assert all(value >= 1 for value in received)

    def test_pagerank_sums_to_node_count(self):
        graph = ring_graph(10)
        engine = PregelEngine(graph, num_workers=2)
        result = engine.run(PageRankProgram(num_iterations=15))
        total = sum(result.vertex_values.values())
        assert total == pytest.approx(10.0, rel=0.05)

    def test_pagerank_uniform_on_ring(self):
        graph = ring_graph(8)
        result = PregelEngine(graph, num_workers=4).run(PageRankProgram(num_iterations=20))
        values = np.array([result.vertex_values[n] for n in range(8)])
        np.testing.assert_allclose(values, np.ones(8), atol=0.05)

    def test_halting_terminates_early(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=2)
        result = engine.run(DegreeCountProgram(), max_supersteps=30)
        assert result.num_supersteps <= 3

    def test_aggregator_visible_next_superstep(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=3,
                              aggregators={"max_id": MaxAggregator()})
        result = engine.run(AggregatingProgram(), max_supersteps=3)
        assert result.vertex_values[0] == float(small_graph.num_nodes - 1)

    def test_metrics_recorded_per_superstep(self, small_graph):
        engine = PregelEngine(small_graph, num_workers=4)
        result = engine.run(DegreeCountProgram())
        phases = result.metrics.phases()
        assert "superstep_0" in phases
        assert result.metrics.total("records_out", "superstep_0") == small_graph.num_edges

    def test_single_record_call_per_partition_per_superstep(self, small_graph):
        """compute/bytes_in and bytes_out land in ONE record() call, so
        per-phase instance counts are not inflated by a separate route-side
        record site."""
        calls = []

        class CountingCollector(MetricsCollector):
            def record(self, phase, instance_id, **kwargs):
                calls.append((phase, int(instance_id)))
                super().record(phase, instance_id, **kwargs)

        engine = PregelEngine(small_graph, num_workers=4, metrics=CountingCollector())
        result = engine.run(DegreeCountProgram())
        assert len(calls) == len(set(calls)), "duplicate record() per (phase, instance)"
        # Every call carries both directions of IO for superstep 0.
        for instance in range(4):
            entry = result.metrics.get("superstep_0", instance)
            assert entry is not None
            assert entry.bytes_in == 0.0          # nothing received yet
            assert entry.bytes_out > 0.0          # everyone sends degree messages

    def test_engine_combiner_reduces_messages(self, small_graph):
        plain = PregelEngine(small_graph, num_workers=2).run(DegreeCountProgram())
        combined_engine = PregelEngine(small_graph, num_workers=2, combiner=SumCombiner())
        combined = combined_engine.run(DegreeCountProgram())
        # Results identical (sum combiner is exact for counting)...
        assert plain.vertex_values == combined.vertex_values
        # ...but fewer records cross the wire.
        assert (combined.metrics.total("records_out", "superstep_0")
                <= plain.metrics.total("records_out", "superstep_0"))


class TestMessageBlocks:
    def test_block_validation(self):
        with pytest.raises(ValueError):
            MessageBlock(dst_ids=np.array([1, 2]), payload=np.zeros((3, 2)))

    def test_block_defaults_counts_to_ones(self):
        block = MessageBlock(dst_ids=np.array([1, 2]), payload=np.zeros((2, 3)))
        np.testing.assert_array_equal(block.counts, [1, 1])

    def test_block_take_preserves_type_and_rows(self):
        block = MessageBlock(dst_ids=np.array([1, 2, 3]), payload=np.arange(6.0).reshape(3, 2))
        piece = block.take(np.array([0, 2]))
        np.testing.assert_array_equal(piece.dst_ids, [1, 3])
        np.testing.assert_allclose(piece.payload, [[0.0, 1.0], [4.0, 5.0]])

    def test_block_nbytes_scales_with_rows(self):
        small = MessageBlock(dst_ids=np.array([1]), payload=np.zeros((1, 8)))
        large = MessageBlock(dst_ids=np.arange(10), payload=np.zeros((10, 8)))
        assert large.nbytes() > small.nbytes()

    def test_1d_payload_reshaped(self):
        block = MessageBlock(dst_ids=np.array([0, 1]), payload=np.array([1.0, 2.0]))
        assert block.payload.shape == (2, 1)


class TestCombiners:
    def test_sum_combiner_block(self):
        block = MessageBlock(dst_ids=np.array([5, 5, 7]),
                             payload=np.array([[1.0], [2.0], [4.0]]))
        combined = SumCombiner().combine_block(block)
        assert combined.num_records() == 2
        lookup = dict(zip(combined.dst_ids.tolist(), combined.payload[:, 0].tolist()))
        assert lookup[5] == 3.0
        assert lookup[7] == 4.0

    def test_sum_combiner_accumulates_counts(self):
        block = MessageBlock(dst_ids=np.array([5, 5]), payload=np.ones((2, 2)),
                             counts=np.array([2, 3]))
        combined = SumCombiner().combine_block(block)
        assert combined.counts[0] == 5

    def test_max_combiner_block(self):
        block = MessageBlock(dst_ids=np.array([1, 1]), payload=np.array([[3.0, 1.0], [2.0, 9.0]]))
        combined = MaxCombiner().combine_block(block)
        np.testing.assert_allclose(combined.payload, [[3.0, 9.0]])

    def test_plain_value_combiners(self):
        assert SumCombiner().combine([1.0, 2.0, 3.0]) == 6.0
        np.testing.assert_allclose(MaxCombiner().combine([np.array([1.0, 5.0]),
                                                          np.array([4.0, 2.0])]), [4.0, 5.0])

    def test_combiner_for_aggregate_kind(self):
        assert isinstance(combiner_for_aggregate_kind("sum"), SumCombiner)
        assert isinstance(combiner_for_aggregate_kind("mean"), MeanCombiner)
        assert isinstance(combiner_for_aggregate_kind("max"), MaxCombiner)
        assert combiner_for_aggregate_kind("union") is None
        with pytest.raises(ValueError):
            combiner_for_aggregate_kind("median")

    def test_empty_block_passthrough(self):
        block = MessageBlock(dst_ids=np.array([], dtype=np.int64), payload=np.zeros((0, 4)))
        assert SumCombiner().combine_block(block).num_records() == 0


class TestAggregators:
    def test_sum_aggregator(self):
        assert SumAggregator().reduce([1.0, 2.0, 3.5]) == 6.5
        assert SumAggregator().identity() == 0.0

    def test_max_aggregator_arrays(self):
        out = MaxAggregator().reduce([np.array([1.0, 9.0]), np.array([5.0, 2.0])])
        np.testing.assert_allclose(out, [5.0, 9.0])

    def test_dict_union_aggregator(self):
        merged = DictUnionAggregator().reduce([{"a": 1}, {"b": 2}, {"a": 3}])
        assert merged == {"a": 3, "b": 2}
        assert DictUnionAggregator().identity() == {}
