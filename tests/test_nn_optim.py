"""Tests for the nn module system, optimisers and loss functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import losses, nn, optim
from repro.tensor.tensor import Tensor


class TestModuleSystem:
    def test_linear_shapes(self):
        layer = nn.Linear(4, 3)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_named_parameters_nested(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        names = dict(seq.named_parameters())
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_state_dict_roundtrip(self):
        layer = nn.Linear(3, 2)
        state = layer.state_dict()
        other = nn.Linear(3, 2, rng=np.random.default_rng(99))
        assert not np.allclose(other.weight.data, layer.weight.data)
        other.load_state_dict(state)
        np.testing.assert_allclose(other.weight.data, layer.weight.data)

    def test_load_state_dict_rejects_unknown_keys(self):
        layer = nn.Linear(3, 2)
        state = layer.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        layer = nn.Linear(3, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        seq.eval()
        assert all(not module.training for module in seq.modules())
        seq.train()
        assert all(module.training for module in seq.modules())

    def test_zero_grad_clears(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_dropout_eval_identity(self):
        dropout = nn.Dropout(0.9)
        dropout.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(dropout(x).data, x.data)

    def test_xavier_uniform_bounds(self):
        values = nn.xavier_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(values) <= limit + 1e-12)

    def test_leaky_relu_module(self):
        layer = nn.LeakyReLU(0.5)
        out = layer(Tensor(np.array([-2.0, 2.0])))
        np.testing.assert_allclose(out.data, [-1.0, 2.0])


def _fit_regression(optimizer_cls, **kwargs) -> float:
    """Fit y = x @ w_true with the given optimiser; return final MSE."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 3))
    w_true = np.array([[1.0], [-2.0], [0.5]])
    y = x @ w_true
    layer = nn.Linear(3, 1, rng=np.random.default_rng(5))
    optimizer = optimizer_cls(layer.parameters(), **kwargs)
    loss_value = np.inf
    for _ in range(200):
        optimizer.zero_grad()
        pred = layer(Tensor(x))
        diff = pred - Tensor(y)
        loss = (diff * diff).mean()
        loss.backward()
        optimizer.step()
        loss_value = float(loss.data)
    return loss_value


class TestOptimizers:
    def test_sgd_converges(self):
        assert _fit_regression(optim.SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert _fit_regression(optim.SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert _fit_regression(optim.Adam, lr=0.05) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        layer = nn.Linear(2, 2)
        layer.weight.data = np.ones((2, 2)) * 10.0
        optimizer = optim.SGD(layer.parameters(), lr=0.1, weight_decay=1.0)
        # No data gradient: only the decay term acts.
        for param in layer.parameters():
            param.grad = np.zeros_like(param.data)
        optimizer.step()
        assert np.all(layer.weight.data < 10.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            optim.SGD([])

    def test_step_skips_params_without_grad(self):
        layer = nn.Linear(2, 2)
        before = layer.weight.data.copy()
        optim.Adam(layer.parameters()).step()
        np.testing.assert_allclose(layer.weight.data, before)


class TestLosses:
    def test_softmax_cross_entropy_matches_reference(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.3]])
        labels = np.array([0, 1])
        loss = losses.softmax_cross_entropy(Tensor(logits), labels)
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(2), labels]))
        assert float(loss.data) == pytest.approx(expected, rel=1e-9)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        losses.softmax_cross_entropy(logits, np.array([2])).backward()
        # Gradient should push up the true class (negative grad) and down others.
        assert logits.grad[0, 2] < 0
        assert logits.grad[0, 0] > 0

    def test_bce_matches_reference(self):
        logits = np.array([[0.3, -1.2], [2.0, 0.0]])
        targets = np.array([[1.0, 0.0], [1.0, 1.0]])
        loss = losses.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probs = 1.0 / (1.0 + np.exp(-logits))
        eps = 1e-7
        probs = probs * (1 - 2 * eps) + eps
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert float(loss.data) == pytest.approx(expected, rel=1e-6)

    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0], [0.0, 1.0]])
        labels = np.array([1, 0, 0])
        assert losses.accuracy(logits, labels) == pytest.approx(2.0 / 3.0)

    def test_micro_f1_perfect(self):
        logits = np.array([[1.0, -1.0], [-1.0, 1.0]])
        targets = np.array([[1, 0], [0, 1]])
        assert losses.micro_f1(logits, targets) == pytest.approx(1.0)

    def test_micro_f1_no_positives(self):
        logits = np.full((2, 3), -1.0)
        targets = np.ones((2, 3))
        assert losses.micro_f1(logits, targets) == 0.0
