"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import labeled_community_graph, powerlaw_graph, star_graph
from repro.graph.graph import Graph
from repro.gnn.model import build_model


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A small labelled community graph shared by read-only tests."""
    return labeled_community_graph(num_nodes=200, num_classes=4, feature_dim=12,
                                   avg_degree=6.0, seed=7)


@pytest.fixture(scope="session")
def powerlaw_out_graph() -> Graph:
    """Out-degree-skewed power-law graph (broadcast / shadow-node regime)."""
    return powerlaw_graph(num_nodes=1500, avg_degree=8.0, skew="out", feature_dim=8,
                          num_classes=2, seed=11)


@pytest.fixture(scope="session")
def powerlaw_in_graph() -> Graph:
    """In-degree-skewed power-law graph (partial-gather regime)."""
    return powerlaw_graph(num_nodes=1500, avg_degree=8.0, skew="in", feature_dim=8,
                          num_classes=2, seed=13)


@pytest.fixture(scope="session")
def tiny_line_graph() -> Graph:
    """0 → 1 → 2 → 3 path with simple features (hand-checkable)."""
    features = np.arange(8, dtype=np.float64).reshape(4, 2)
    return Graph(src=np.array([0, 1, 2]), dst=np.array([1, 2, 3]),
                 node_features=features, labels=np.array([0, 1, 0, 1]), num_nodes=4)


@pytest.fixture()
def sage_model(small_graph):
    return build_model("sage", small_graph.feature_dim, 16, 4, num_layers=2, seed=0)


@pytest.fixture()
def gat_model(small_graph):
    return build_model("gat", small_graph.feature_dim, 16, 4, num_layers=2, heads=4, seed=0)


@pytest.fixture()
def gcn_model(small_graph):
    return build_model("gcn", small_graph.feature_dim, 16, 4, num_layers=2, seed=0)
