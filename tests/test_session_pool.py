"""The multi-tenant :class:`SessionPool`: plan cache, LRU eviction, deltas.

One deployed model serves many prepared graphs; the pool keys sessions by
:func:`graph_fingerprint` so a tenant's second ``infer()`` must hit the plan
cache (no re-prepare — asserted with a backend spy), evicts least-recently
used beyond capacity, and re-keys entries after deltas so drifting tenants
keep hitting.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster.executor import WorkerCrashError, available_executors
from repro.gnn import export_signature
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.graph.tables import graph_to_tables
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    SessionPool,
    StrategyConfig,
    graph_fingerprint,
)


def make_graph(seed: int, num_nodes: int = 400):
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=5.0, skew="out",
                          feature_dim=8, num_classes=4, seed=seed)


def make_config() -> InferenceConfig:
    return InferenceConfig(backend="pregel", num_workers=4,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True,
                                                     hub_threshold_override=20))


def make_model():
    return build_model("gcn", 8, 16, 4, num_layers=2, seed=0)


class _PlanCounter:
    """Delegating spy counting backend plan() calls across pooled sessions."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.plan_calls = 0

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        self.plan_calls += 1
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        return self._inner.execute(plan, metrics)

    def apply_delta(self, plan, delta):
        return self._inner.apply_delta(plan, delta)

    def execute_incremental(self, plan, metrics, feature_dirty, topo_dirty):
        return self._inner.execute_incremental(plan, metrics,
                                               feature_dirty, topo_dirty)


def _spy_on(pool: SessionPool, session: InferenceSession) -> _PlanCounter:
    spy = _PlanCounter(session.backend)
    session.backend = spy
    return spy


class TestPlanCache:
    def test_second_infer_per_graph_hits_plan_cache(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graphs = [make_graph(seed) for seed in (1, 2, 3)]
        spies = []
        for graph in graphs:
            session = pool.session_for(graph)
            spies.append(_spy_on(pool, session))
        first = [pool.infer(graph).scores for graph in graphs]
        second = [pool.infer(graph).scores for graph in graphs]
        assert all(spy.plan_calls == 0 for spy in spies), "second tick re-planned"
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        stats = pool.stats
        assert stats.misses == 3 and stats.hits == 6 and stats.evictions == 0

    def test_pool_scores_match_dedicated_sessions(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        for seed in (5, 6):
            graph = make_graph(seed)
            pooled = pool.infer(graph).scores
            solo = InferenceSession(make_model(), make_config())
            solo.prepare(make_graph(seed))
            np.testing.assert_array_equal(pooled, solo.infer().scores)

    def test_identical_content_shares_one_plan(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        a, b = make_graph(7), make_graph(7)     # equal content, distinct objects
        assert pool.session_for(a) is pool.session_for(b)
        assert len(pool) == 1 and pool.stats.hits == 1

    def test_signature_built_once_and_shared(self):
        signature = export_signature(make_model())
        pool = SessionPool(signature, make_config(), capacity=4)
        s1 = pool.session_for(make_graph(8))
        s2 = pool.session_for(make_graph(9))
        assert s1.model is s2.model is pool.model

    def test_tables_pairs_are_content_addressed(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(10)
        tables = graph_to_tables(graph)
        pool.infer(tables)
        pool.infer(tables)
        assert pool.stats.hits == 1 and pool.stats.misses == 1


class TestEviction:
    def test_lru_eviction_beyond_capacity(self):
        pool = SessionPool(make_model(), make_config(), capacity=2)
        g1, g2, g3 = make_graph(11), make_graph(12), make_graph(13)
        s1 = pool.session_for(g1)
        pool.session_for(g2)
        pool.session_for(g1)            # touch g1: g2 becomes LRU
        pool.session_for(g3)            # evicts g2
        assert len(pool) == 2 and pool.stats.evictions == 1
        assert g1 in pool and g3 in pool and g2 not in pool
        assert pool.session_for(g1) is s1          # survived untouched
        pool.session_for(g2)                       # re-prepared on return
        assert pool.stats.misses == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionPool(make_model(), make_config(), capacity=0)

    def test_evict_and_clear(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(14)
        pool.session_for(graph)
        assert pool.evict(graph) and not pool.evict(graph)
        pool.session_for(graph)
        pool.clear()
        assert len(pool) == 0 and pool.stats.evictions == 2


class TestDeltaRouting:
    def test_apply_delta_rekeys_entry(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(15)
        pool.infer(graph)
        old_fingerprint = graph_fingerprint(graph)
        rng = np.random.default_rng(0)
        ids = rng.choice(graph.num_nodes, size=10, replace=False)
        outcome = pool.apply_delta(graph, GraphDelta(
            node_ids=ids, node_features=rng.standard_normal((10, 8))))
        assert outcome.in_place
        # The delta mutated the graph; the entry must follow the content.
        assert graph_fingerprint(graph) != old_fingerprint
        assert graph in pool and old_fingerprint not in pool.fingerprints()
        pool.infer(graph, mode="incremental")
        assert pool.stats.misses == 1              # never re-prepared

    def test_pool_delta_scores_match_fresh_plan(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(16)
        pool.infer(graph)
        rng = np.random.default_rng(1)
        ids = rng.choice(graph.num_nodes, size=10, replace=False)
        rows = rng.standard_normal((10, 8))
        pool.apply_delta(graph, GraphDelta(node_ids=ids, node_features=rows))
        pooled = pool.infer(graph, mode="incremental").scores
        reference = make_graph(16)
        reference.node_features[ids] = rows
        solo = InferenceSession(make_model(), make_config())
        solo.prepare(reference)
        np.testing.assert_array_equal(pooled, solo.infer().scores)

    def test_deferred_delta_tracks_key_and_flushes_at_infer(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(17)
        pool.infer(graph)
        fingerprint_before = graph_fingerprint(graph)
        session = pool.session_for(graph)
        outcome = pool.apply_delta(graph, GraphDelta(
            node_ids=np.array([3]), node_features=np.ones((1, 8))), defer=True)
        assert outcome.deferred
        # The caller's handle mirrors the delta eagerly (the key must track
        # the content); the session's plan patch is what is deferred.
        assert graph_fingerprint(graph) != fingerprint_before
        assert session.num_pending_deltas == 1
        pool.infer(graph)                          # hit; flushes the buffer
        assert session.num_pending_deltas == 0
        assert graph in pool
        assert pool.stats.misses == 1              # never re-prepared

    def test_content_equal_tenants_are_isolated(self):
        # Two tenants with byte-identical graphs share one plan, but a delta
        # from tenant B must never mutate tenant A's arrays (the pooled
        # session owns a private copy), and A keeps being served its own
        # (pre-delta) content.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        tenant_a, tenant_b = make_graph(19), make_graph(19)
        scores_before = pool.infer(tenant_a).scores
        assert pool.session_for(tenant_b) is pool.session_for(tenant_a)
        a_features = tenant_a.node_features.copy()
        rng = np.random.default_rng(3)
        ids = rng.choice(tenant_b.num_nodes, size=10, replace=False)
        pool.apply_delta(tenant_b, GraphDelta(
            node_ids=ids, node_features=rng.standard_normal((10, 8))))
        np.testing.assert_array_equal(tenant_a.node_features, a_features)
        np.testing.assert_array_equal(pool.infer(tenant_a).scores, scores_before)
        # B's handle diverged with the delta and keeps hitting its session.
        hits_before = pool.stats.hits
        pool.infer(tenant_b, mode="incremental")
        assert pool.stats.hits == hits_before + 1

    def test_apply_delta_rejects_tables_tenants(self):
        # A (NodeTable, EdgeTable) pair is re-ingested per lookup; a delta
        # could not be mirrored onto the caller's object and would be lost.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        tables = graph_to_tables(make_graph(20))
        pool.infer(tables)
        with pytest.raises(TypeError, match="tables_to_graph"):
            pool.apply_delta(tables, GraphDelta(node_ids=np.array([1]),
                                                node_features=np.ones((1, 8))))

    def test_discarded_deferred_deltas_do_not_arm_state_cache(self):
        session = InferenceSession(make_model(), make_config())
        graph = make_graph(21)
        session.prepare(graph)
        session.apply_delta(GraphDelta(node_ids=np.array([1]),
                                       node_features=np.ones((1, 8))), defer=True)
        assert not session.plan.delta_seen         # nothing applied yet
        session.discard_pending_deltas()
        session.infer()
        assert not session.plan.delta_seen
        from repro.inference.pregel_adaptor import has_cached_run
        engine = session.plan.state["engine"]
        assert not any(has_cached_run(p, session.model.num_layers)
                       for p in engine.partitions)

    def test_rekey_onto_resident_fingerprint_keeps_one_plan_per_content(self):
        # Tenant B's delta makes its content byte-identical to tenant A's
        # (duplicate-content tenants): the re-key lands on a fingerprint that
        # is already resident.  The fresher session must replace the resident
        # one — one plan per content — and both handles keep being served
        # correct scores.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        tenant_a = make_graph(30)
        tenant_b = make_graph(30)
        rng = np.random.default_rng(5)
        ids = rng.choice(tenant_b.num_nodes, size=6, replace=False)
        original_rows = tenant_b.node_features[ids].copy()
        # Diverge B first so A and B occupy two distinct entries.
        pool.apply_delta(tenant_b, GraphDelta(
            node_ids=ids, node_features=rng.standard_normal((6, 8))))
        scores_a = pool.infer(tenant_a).scores
        pool.infer(tenant_b)
        assert len(pool) == 2
        evictions_before = pool.stats.evictions
        b_session = pool.session_for(tenant_b)
        # Converge B back onto A's exact content.
        pool.apply_delta(tenant_b, GraphDelta(node_ids=ids,
                                              node_features=original_rows))
        assert graph_fingerprint(tenant_b) == graph_fingerprint(tenant_a)
        assert len(pool) == 1, "converged tenants must share one entry"
        assert pool.stats.evictions == evictions_before + 1
        # The surviving entry is B's (fresher) session, and it serves the
        # shared content correctly for both handles.
        assert pool.session_for(tenant_a) is b_session
        np.testing.assert_array_equal(pool.infer(tenant_b).scores, scores_a)
        np.testing.assert_array_equal(pool.infer(tenant_a).scores, scores_a)

    def test_eviction_with_deferred_deltas_pending(self):
        # A session holding deferred deltas in its DeltaBuffer gets LRU
        # evicted.  The buffered plan patch dies with the session, but no
        # update is lost: apply_delta mirrored the delta onto the caller's
        # graph at defer time, so the tenant's next appearance re-prepares
        # from post-delta content — and eviction itself must not raise.
        pool = SessionPool(make_model(), make_config(), capacity=1)
        tenant_a = make_graph(31)
        pool.infer(tenant_a)
        session_a = pool.session_for(tenant_a)
        rng = np.random.default_rng(6)
        ids = rng.choice(tenant_a.num_nodes, size=5, replace=False)
        rows = rng.standard_normal((5, 8))
        outcome = pool.apply_delta(tenant_a, GraphDelta(
            node_ids=ids, node_features=rows), defer=True)
        assert outcome.deferred and session_a.num_pending_deltas == 1

        tenant_b = make_graph(32)
        pool.infer(tenant_b)                       # capacity 1: evicts A
        assert tenant_a not in pool
        assert pool.stats.evictions == 1
        # The evicted session still holds its (now orphaned) buffer; the pool
        # never flushed it behind the tenant's back.
        assert session_a.num_pending_deltas == 1

        # A's next appearance re-prepares from the mirrored (post-delta)
        # content and serves the same scores a dedicated post-delta session
        # would — nothing was lost with the buffer.
        scores = pool.infer(tenant_a).scores
        reference = make_graph(31)
        reference.node_features[ids] = rows
        solo = InferenceSession(make_model(), make_config())
        solo.prepare(reference)
        np.testing.assert_array_equal(scores, solo.infer().scores)

    def test_concurrent_deferred_deltas_coalesce_into_one_flush(self):
        # Many threads defer disjoint feature patches onto one tenant; the
        # single infer that follows flushes them as one merged plan patch,
        # bit-identical to a session prepared from the final content.
        pool = SessionPool(make_model(), make_config(), capacity=2)
        graph = make_graph(35)
        pool.infer(graph)
        session = pool.session_for(graph)
        rng = np.random.default_rng(7)
        ids = rng.choice(graph.num_nodes, size=32, replace=False)
        rows = rng.standard_normal((32, 8))
        chunks = [(ids[i:i + 4], rows[i:i + 4]) for i in range(0, 32, 4)]
        errors = []

        def worker(chunk_ids, chunk_rows):
            try:
                pool.apply_delta(graph, GraphDelta(node_ids=chunk_ids,
                                                   node_features=chunk_rows),
                                 defer=True)
            except Exception as exc:       # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=chunk)
                   for chunk in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert session.num_pending_deltas == len(chunks)

        scores = pool.infer(graph, mode="incremental").scores
        assert session.num_pending_deltas == 0
        reference = make_graph(35)
        reference.node_features[ids] = rows
        solo = InferenceSession(make_model(), make_config())
        solo.prepare(reference)
        np.testing.assert_array_equal(scores, solo.infer().scores)

    def test_out_of_band_mutation_misses_instead_of_serving_stale(self):
        # Content addressing: a foreign in-place mutation changes the key, so
        # the pool plans the new content instead of serving the stale plan.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(18)
        before = pool.infer(graph).scores
        graph.node_features[0] += 1.0
        after = pool.infer(graph).scores
        assert pool.stats.misses == 2 and len(pool) == 2
        assert not np.array_equal(before, after)


class _BlockingBackend:
    """Delegating spy whose execute() blocks until released (thread tests)."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.entered = threading.Event()
        self.release = threading.Event()

    def default_cluster(self, num_workers):
        return self._inner.default_cluster(num_workers)

    def plan(self, model, graph, config):
        return self._inner.plan(model, graph, config)

    def execute(self, plan, metrics):
        self.entered.set()
        assert self.release.wait(timeout=30), "blocked execute never released"
        return self._inner.execute(plan, metrics)

    def apply_delta(self, plan, delta):
        return self._inner.apply_delta(plan, delta)

    def execute_incremental(self, plan, metrics, feature_dirty, topo_dirty):
        return self._inner.execute_incremental(plan, metrics,
                                               feature_dirty, topo_dirty)


class TestThreadSafety:
    def test_threaded_hammer_never_double_prepares(self):
        # 8 threads hammer 3 shared tenants cold: the pool lock must ensure
        # exactly one prepare per distinct content (misses == 3), with every
        # thread served consistent scores.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graphs = [make_graph(seed, num_nodes=200) for seed in (25, 26, 27)]
        expected = {}
        for graph in graphs:
            solo = InferenceSession(make_model(), make_config())
            solo.prepare(make_graph(graphs.index(graph) + 25, num_nodes=200))
            expected[id(graph)] = solo.infer().scores
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_id):
            try:
                barrier.wait(timeout=30)
                for round_num in range(4):
                    graph = graphs[(worker_id + round_num) % len(graphs)]
                    scores = pool.infer(graph).scores
                    np.testing.assert_array_equal(scores, expected[id(graph)])
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:1]
        stats = pool.stats
        assert stats.misses == 3, "concurrent cold lookups double-prepared"
        assert stats.hits == 8 * 4 - 3
        assert len(pool) == 3

    def test_concurrent_deltas_and_infers_never_tear_fingerprints(self):
        # Regression: apply_delta mirrors the delta onto the caller's graph
        # under the pool lock, and every lookup fingerprints under that same
        # lock — so an infer racing a delta must see either fully pre- or
        # fully post-delta content, with the cache entry keyed to match.  A
        # torn read would surface as a spurious miss (re-preparing from
        # half-mutated arrays); with one tenant the pool must miss exactly
        # once, ever.
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(55, num_nodes=200)
        pool.prepare(graph)
        rng = np.random.default_rng(7)
        deltas = [GraphDelta(node_ids=rng.choice(200, size=5, replace=False),
                             node_features=rng.standard_normal((5, 8)))
                  for _ in range(12)]
        errors = []

        def writer():
            try:
                for delta in deltas:
                    pool.apply_delta(graph, delta, defer=True)
            except Exception as exc:       # pragma: no cover - diagnostic
                errors.append(exc)

        def reader():
            try:
                for _ in range(6):
                    pool.infer(graph)
            except Exception as exc:       # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:1]
        assert pool.stats.misses == 1, \
            "a lookup fingerprinted a half-mirrored graph"

        reference = make_graph(55, num_nodes=200)
        for delta in deltas:               # single writer: in-order content
            reference.node_features[delta.node_ids] = delta.node_features
        solo = InferenceSession(make_model(), make_config())
        solo.prepare(reference)
        np.testing.assert_array_equal(pool.infer(graph).scores,
                                      solo.infer().scores)

    def test_slow_prepare_does_not_block_other_tenants(self):
        # Regression: a cache miss's prepare() runs outside the pool lock
        # (per-fingerprint once-guard), so one tenant's slow planning must
        # not stall another tenant's lookup.
        from repro.inference.backends import (get_backend, register_backend,
                                              unregister_backend)

        inner = get_backend("pregel")
        first_plan_entered = threading.Event()
        release_first_plan = threading.Event()

        class GatedPlanBackend:
            """Delegates to pregel; the FIRST plan() blocks until released."""
            name = "gated-pregel-test"

            def __init__(self):
                self._gated = [True]

            def default_cluster(self, num_workers):
                return inner.default_cluster(num_workers)

            def plan(self, model, graph, config):
                gate, self._gated[0] = self._gated[0], False
                if gate:
                    first_plan_entered.set()
                    assert release_first_plan.wait(timeout=60)
                return inner.plan(model, graph, config)

            def execute(self, plan, metrics):
                return inner.execute(plan, metrics)

            def apply_delta(self, plan, delta):
                return inner.apply_delta(plan, delta)

            def execute_incremental(self, plan, metrics,
                                    feature_dirty, topo_dirty):
                return inner.execute_incremental(plan, metrics,
                                                 feature_dirty, topo_dirty)

        register_backend("gated-pregel-test")(GatedPlanBackend)
        try:
            config = make_config()
            config.backend = "gated-pregel-test"
            pool = SessionPool(make_model(), config, capacity=4)
            tenant_a, tenant_b = make_graph(56, 200), make_graph(57, 200)
            thread_a = threading.Thread(target=pool.prepare, args=(tenant_a,))
            thread_a.start()
            assert first_plan_entered.wait(timeout=30)
            # Failsafe so a regression fails the assertion below instead of
            # deadlocking the suite.
            failsafe = threading.Timer(20.0, release_first_plan.set)
            failsafe.start()
            scores_b = pool.infer(tenant_b).scores
            a_still_planning = thread_a.is_alive()
            release_first_plan.set()
            thread_a.join(timeout=30)
            failsafe.cancel()
            assert a_still_planning, \
                "tenant B's lookup waited for tenant A's prepare()"
            assert tenant_a in pool and tenant_b in pool
            solo = InferenceSession(make_model(), make_config())
            solo.prepare(make_graph(57, 200))
            np.testing.assert_array_equal(scores_b, solo.infer().scores)
        finally:
            release_first_plan.set()
            unregister_backend("gated-pregel-test")

    def test_eviction_during_in_flight_infer_is_safe(self):
        # Capacity 1: tenant B's arrival evicts tenant A's entry while A's
        # infer is still executing.  Eviction close() waits for the in-flight
        # run (session exec lock), so A still receives correct scores.
        pool = SessionPool(make_model(), make_config(), capacity=1)
        tenant_a, tenant_b = make_graph(28, 200), make_graph(29, 200)
        pool.prepare(tenant_a)
        session_a = pool.session_for(tenant_a)
        gate = _BlockingBackend(session_a.backend)
        session_a.backend = gate
        holder = {}

        def infer_a():
            holder["scores"] = pool.infer(tenant_a).scores

        thread_a = threading.Thread(target=infer_a)
        thread_a.start()
        assert gate.entered.wait(timeout=30)
        # B's miss evicts A and then waits — outside the pool lock — inside
        # close() for A's execute to finish; release it after a beat.
        releaser = threading.Timer(0.05, gate.release.set)
        releaser.start()
        scores_b = pool.infer(tenant_b).scores
        thread_a.join(timeout=30)
        releaser.join()
        assert not thread_a.is_alive()

        assert tenant_a not in pool and tenant_b in pool
        assert pool.stats.evictions == 1
        solo = InferenceSession(make_model(), make_config())
        solo.prepare(make_graph(28, 200))
        np.testing.assert_array_equal(holder["scores"], solo.infer().scores)
        solo_b = InferenceSession(make_model(), make_config())
        solo_b.prepare(make_graph(29, 200))
        np.testing.assert_array_equal(scores_b, solo_b.infer().scores)


class TestWeightedEviction:
    def test_heavy_entry_survives_lighter_more_recent_entry(self):
        # Weighted eviction reverses LRU here: the heavy (expensive-to-
        # rebuild) plan is the least recently used, yet the light one dies.
        pool = SessionPool(make_model(), make_config(), capacity=2)
        heavy = make_graph(33, num_nodes=1200)
        light = make_graph(34, num_nodes=150)
        pool.session_for(heavy)
        pool.session_for(light)            # light is now most recent
        newcomer = make_graph(36, num_nodes=150)
        pool.session_for(newcomer)         # over capacity: someone must go
        assert light not in pool, "LRU would have evicted heavy instead"
        assert heavy in pool and newcomer in pool
        assert pool.stats.evictions == 1

    def test_stale_heavy_entry_ages_out(self):
        # weight/age decays: a heavy plan nobody touches loses to a light
        # plan in active use — heaviness is not squatters' rights.
        pool = SessionPool(make_model(), make_config(), capacity=2)
        heavy = make_graph(33, num_nodes=1200)
        light = make_graph(34, num_nodes=150)
        pool.session_for(heavy)
        for _ in range(30):                # age the heavy entry
            pool.session_for(light)
        pool.session_for(make_graph(36, num_nodes=150))
        assert heavy not in pool and light in pool

    def test_custom_weigher_pins_chosen_tenant(self):
        # The weigher seam: measured prepare cost (or any policy) replaces
        # the byte-size default.  Here a pin-weigher keeps one tenant
        # resident through a stream of insertions that would evict it by LRU.
        pinned = make_graph(37, num_nodes=150)
        pinned_fingerprint = graph_fingerprint(pinned)

        def pin_weigher(entry):
            return 1e9 if entry.fingerprint == pinned_fingerprint else 1.0

        pool = SessionPool(make_model(), make_config(), capacity=2,
                           weigher=pin_weigher)
        pool.session_for(pinned)
        for seed in (38, 39, 41, 42):
            pool.session_for(make_graph(seed, num_nodes=150))
        assert pinned in pool
        assert pool.stats.evictions == 3

    def test_entries_expose_measured_prepare_cost(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        pool.session_for(make_graph(43, num_nodes=150))
        pool.session_for(make_graph(44, num_nodes=1200))
        small, large = pool.entries()
        assert small.prepare_seconds > 0.0 and large.prepare_seconds > 0.0
        assert large.graph_bytes > small.graph_bytes
        assert small.weight == float(small.graph_bytes)     # default weigher
        measured = SessionPool(make_model(), make_config(), capacity=4,
                               weigher=lambda entry: entry.prepare_seconds)
        measured.session_for(make_graph(43, num_nodes=150))
        entry = measured.entries()[0]
        assert entry.weight == entry.prepare_seconds


class TestTTL:
    def test_expired_entry_repreparess_transparently(self):
        t = [0.0]
        pool = SessionPool(make_model(), make_config(), capacity=4,
                           ttl_seconds=10.0, clock=lambda: t[0])
        graph = make_graph(45)
        before = pool.infer(graph).scores
        first_session = pool.session_for(graph)
        t[0] = 9.99
        assert graph in pool
        t[0] = 10.0
        assert graph not in pool           # TTL elapsed: entry is dead
        after = pool.infer(graph).scores   # ...but serving just works
        stats = pool.stats
        assert stats.expirations == 1
        assert stats.misses == 2           # the re-prepare is an honest miss
        assert pool.session_for(graph) is not first_session
        np.testing.assert_array_equal(before, after)

    def test_purge_expired_sweeps_all_dead_entries(self):
        t = [0.0]
        pool = SessionPool(make_model(), make_config(), capacity=4,
                           ttl_seconds=5.0, clock=lambda: t[0])
        pool.session_for(make_graph(46))
        t[0] = 3.0
        pool.session_for(make_graph(47))   # expires later than the first
        assert pool.purge_expired() == 0
        t[0] = 5.0
        assert pool.purge_expired() == 1   # only the first has expired
        t[0] = 8.0
        assert pool.purge_expired() == 1
        assert len(pool) == 0
        assert pool.stats.expirations == 2 and pool.stats.evictions == 0

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError, match="ttl_seconds"):
            SessionPool(make_model(), make_config(), ttl_seconds=0.0)


class TestLatencyAccounting:
    def test_pool_stats_track_measured_wall_clock(self):
        pool = SessionPool(make_model(), make_config(), capacity=4)
        graph = make_graph(48)
        results = [pool.infer(graph) for _ in range(3)]
        stats = pool.stats
        assert stats.total_prepare_seconds > 0.0
        assert stats.total_infer_seconds == pytest.approx(
            sum(result.elapsed_seconds for result in results))
        assert "preparing" in stats.describe() and "serving" in stats.describe()


class TestCrashIsolation:
    """A worker crash in one pooled tenant must not poison its siblings."""

    @pytest.mark.skipif(
        "process" not in available_executors(),
        reason="process executor unavailable")
    def test_sibling_tenants_survive_a_worker_kill(self):
        import os
        import signal

        config = InferenceConfig(
            backend="pregel", num_workers=2, executor="process",
            strategies=StrategyConfig(partial_gather=True, broadcast=False,
                                      shadow_nodes=False,
                                      hub_threshold_override=1_000_000))
        pool = SessionPool(make_model(), config, capacity=4)
        graph_a = make_graph(81)
        graph_b = make_graph(82)
        try:
            baseline_a = pool.infer(graph_a).scores
            baseline_b = pool.infer(graph_b).scores

            # SIGKILL one of tenant A's workers; join the corpse so the next
            # execution deterministically sees the dead pipe.
            session_a = pool.session_for(graph_a)
            engine = session_a.plan.state["engine"]
            victim = next(proc for proc in engine._executor._processes
                          if proc.is_alive())
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)

            with pytest.raises(WorkerCrashError):
                pool.infer(graph_a)

            # Tenant B's own worker pool is untouched: no crash, no drift.
            after_b = pool.infer(graph_b).scores
            np.testing.assert_array_equal(after_b, baseline_b)

            # Tenant A recovers on retry with bit-identical scores.
            recovered_a = pool.infer(graph_a).scores
            np.testing.assert_array_equal(recovered_a, baseline_a)
        finally:
            pool.clear()
