"""Tests for the Graph data structure, tables and partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, partition_balance, partition_graph
from repro.graph.tables import EdgeTable, NodeTable, graph_to_tables, tables_to_graph


def make_graph(num_nodes=10, num_edges=30, seed=0, with_features=True):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    features = rng.normal(size=(num_nodes, 3)) if with_features else None
    return Graph(src, dst, node_features=features, labels=rng.integers(0, 2, size=num_nodes),
                 num_nodes=num_nodes)


class TestGraphBasics:
    def test_counts(self, tiny_line_graph):
        assert tiny_line_graph.num_nodes == 4
        assert tiny_line_graph.num_edges == 3
        assert tiny_line_graph.feature_dim == 2

    def test_degree_sums_equal_edges(self):
        graph = make_graph(20, 77, seed=1)
        assert graph.in_degrees().sum() == graph.num_edges
        assert graph.out_degrees().sum() == graph.num_edges

    def test_neighbors_line_graph(self, tiny_line_graph):
        np.testing.assert_array_equal(tiny_line_graph.out_neighbors(0), [1])
        np.testing.assert_array_equal(tiny_line_graph.in_neighbors(3), [2])
        assert tiny_line_graph.out_neighbors(3).size == 0
        assert tiny_line_graph.in_neighbors(0).size == 0

    def test_edge_ids_consistent_with_neighbors(self):
        graph = make_graph(15, 60, seed=2)
        for node in range(graph.num_nodes):
            out_ids = graph.out_edge_ids(node)
            np.testing.assert_array_equal(graph.dst[out_ids], graph.out_neighbors(node))
            in_ids = graph.in_edge_ids(node)
            np.testing.assert_array_equal(graph.src[in_ids], graph.in_neighbors(node))

    def test_mismatched_src_dst_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([1]))

    def test_bad_feature_rows_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0]), np.array([1]), node_features=np.zeros((5, 2)), num_nodes=2)

    def test_edge_endpoints_beyond_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 7]), np.array([1, 1]), num_nodes=3)

    def test_empty_graph(self):
        graph = Graph(np.array([], dtype=np.int64), np.array([], dtype=np.int64), num_nodes=5)
        assert graph.num_edges == 0
        assert graph.in_degrees().sum() == 0
        assert graph.summary()["max_in_degree"] == 0

    def test_summary_fields(self, small_graph):
        stats = small_graph.summary()
        assert stats["num_nodes"] == small_graph.num_nodes
        assert stats["num_classes"] == 4
        assert stats["mean_degree"] == pytest.approx(small_graph.num_edges / small_graph.num_nodes)


class TestDerivedGraphs:
    def test_reverse_swaps_degrees(self):
        graph = make_graph(12, 40, seed=3)
        reverse = graph.reverse()
        np.testing.assert_array_equal(graph.in_degrees(), reverse.out_degrees())
        np.testing.assert_array_equal(graph.out_degrees(), reverse.in_degrees())

    def test_add_self_loops(self):
        graph = make_graph(8, 20, seed=4)
        looped = graph.add_self_loops()
        assert looped.num_edges == graph.num_edges + graph.num_nodes
        assert np.all(looped.in_degrees() >= 1)

    def test_subgraph_induced_edges(self, tiny_line_graph):
        sub, node_ids, edge_ids = tiny_line_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2          # 0→1 and 1→2; 2→3 leaves the set
        np.testing.assert_array_equal(node_ids, [0, 1, 2])
        assert set(edge_ids.tolist()) == {0, 1}

    def test_subgraph_slices_attributes(self):
        graph = make_graph(10, 25, seed=5)
        keep = np.array([1, 3, 5, 7])
        sub, _, _ = graph.subgraph(keep)
        np.testing.assert_allclose(sub.node_features, graph.node_features[keep])
        np.testing.assert_array_equal(sub.labels, graph.labels[keep])


class TestTables:
    def test_roundtrip_preserves_structure(self, small_graph):
        node_table, edge_table = graph_to_tables(small_graph)
        rebuilt = tables_to_graph(node_table, edge_table)
        assert rebuilt.num_nodes == small_graph.num_nodes
        assert rebuilt.num_edges == small_graph.num_edges
        np.testing.assert_array_equal(np.sort(rebuilt.src), np.sort(small_graph.src))
        np.testing.assert_allclose(rebuilt.node_features, small_graph.node_features)

    def test_node_table_adjacency_matches_edges(self, small_graph):
        node_table, edge_table = graph_to_tables(small_graph)
        assert node_table.num_out_edges() == len(edge_table)
        for position in range(min(20, len(node_table))):
            node_id, _, neighbors = node_table.row(position)
            np.testing.assert_array_equal(np.sort(neighbors),
                                          np.sort(small_graph.out_neighbors(node_id)))

    def test_node_table_validation(self):
        with pytest.raises(ValueError):
            NodeTable(node_ids=np.array([0, 1]), features=np.zeros((3, 2)),
                      out_neighbors=[np.array([]), np.array([])])
        with pytest.raises(ValueError):
            NodeTable(node_ids=np.array([0, 1]), features=None, out_neighbors=[np.array([])])

    def test_edge_table_validation(self):
        with pytest.raises(ValueError):
            EdgeTable(src=np.array([0, 1]), dst=np.array([0]))
        with pytest.raises(ValueError):
            EdgeTable(src=np.array([0]), dst=np.array([1]), features=np.zeros((3, 2)))


class TestPartitioning:
    def test_assign_deterministic_and_in_range(self):
        partitioner = HashPartitioner(7)
        ids = np.arange(100)
        assignments = partitioner.assign_many(ids)
        assert np.all((assignments >= 0) & (assignments < 7))
        for node in range(100):
            assert partitioner.assign(node) == assignments[node]

    def test_custom_hash_fn(self):
        partitioner = HashPartitioner(4, hash_fn=lambda node: 0)
        assert set(partitioner.assign_many(np.arange(10)).tolist()) == {0}

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_partition_graph_covers_all_nodes_and_edges(self, small_graph):
        partitions = partition_graph(small_graph, HashPartitioner(5))
        all_nodes = np.concatenate([p.node_ids for p in partitions])
        assert np.array_equal(np.sort(all_nodes), np.arange(small_graph.num_nodes))
        assert sum(p.num_out_edges for p in partitions) == small_graph.num_edges

    def test_partition_owns_out_edges_of_its_nodes(self, small_graph):
        partitions = partition_graph(small_graph, HashPartitioner(4))
        for partition in partitions:
            owned = set(partition.node_ids.tolist())
            assert all(int(s) in owned for s in partition.out_src)

    def test_partition_features_sliced(self, small_graph):
        partitions = partition_graph(small_graph, HashPartitioner(3))
        for partition in partitions:
            np.testing.assert_allclose(partition.node_features,
                                       small_graph.node_features[partition.node_ids])

    def test_partition_balance_stats(self, small_graph):
        partitions = partition_graph(small_graph, HashPartitioner(4))
        stats = partition_balance(partitions)
        assert stats["nodes_mean"] == pytest.approx(small_graph.num_nodes / 4)
        assert stats["edges_max"] >= stats["edges_mean"]


@settings(max_examples=30, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=40),
       num_edges=st.integers(min_value=0, max_value=120),
       num_partitions=st.integers(min_value=1, max_value=8))
def test_partitioning_is_exhaustive_and_disjoint(num_nodes, num_edges, num_partitions):
    """Property: every node appears in exactly one partition; edges conserved."""
    rng = np.random.default_rng(num_nodes * 97 + num_edges)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    graph = Graph(src, dst, num_nodes=num_nodes)
    partitions = partition_graph(graph, HashPartitioner(num_partitions))
    all_nodes = np.concatenate([p.node_ids for p in partitions]) if partitions else np.array([])
    assert np.array_equal(np.sort(all_nodes), np.arange(num_nodes))
    assert sum(p.num_out_edges for p in partitions) == num_edges


@settings(max_examples=30, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=30),
       num_edges=st.integers(min_value=1, max_value=90))
def test_degree_invariants(num_nodes, num_edges):
    """Property: in/out degree sums both equal the edge count."""
    rng = np.random.default_rng(num_nodes * 13 + num_edges)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    graph = Graph(src, dst, num_nodes=num_nodes)
    assert graph.in_degrees().sum() == num_edges
    assert graph.out_degrees().sum() == num_edges
    assert graph.in_degrees().shape == (num_nodes,)
