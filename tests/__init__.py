"""Test package for the InferTurbo reproduction."""
