"""Tests for the ClusterLayout routing tables and their partitioning hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.layout import ClusterLayout
from repro.graph.partition import (
    HashPartitioner,
    partition_graph,
    partition_graph_with_layout,
)


class TestClusterLayoutConstruction:
    def test_from_assignments_matches_naive_dict(self):
        rng = np.random.default_rng(3)
        assignments = rng.integers(0, 5, size=200).astype(np.int64)
        layout = ClusterLayout.from_assignments(assignments, 5)
        # Naive reference: local index = rank among same-partition ids.
        naive_local = {}
        counters = [0] * 5
        for node, pid in enumerate(assignments):
            naive_local[node] = counters[pid]
            counters[pid] += 1
        np.testing.assert_array_equal(layout.owner_of, assignments)
        for node in range(200):
            assert int(layout.local_of[node]) == naive_local[node]

    def test_build_matches_partitioner(self):
        partitioner = HashPartitioner(7)
        layout = ClusterLayout.build(100, partitioner)
        np.testing.assert_array_equal(
            layout.owner_of, partitioner.assign_many(np.arange(100)))

    def test_build_with_custom_hash(self):
        partitioner = HashPartitioner(4, hash_fn=lambda node: node * 31 + 7)
        layout = ClusterLayout.build(64, partitioner)
        expected = np.array([(n * 31 + 7) % 4 for n in range(64)])
        np.testing.assert_array_equal(layout.owner_of, expected)

    def test_rejects_out_of_range_owners(self):
        with pytest.raises(ValueError):
            ClusterLayout(owner_of=np.array([0, 3]), local_of=np.array([0, 0]),
                          num_partitions=2)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ClusterLayout(owner_of=np.array([0, 1]), local_of=np.array([0]),
                          num_partitions=2)


class TestClusterLayoutLookups:
    @pytest.fixture()
    def layout(self):
        return ClusterLayout.build(60, HashPartitioner(4))

    def test_nodes_of_roundtrip(self, layout):
        for pid in range(4):
            nodes = layout.nodes_of(pid)
            assert np.all(np.diff(nodes) > 0)  # ascending
            np.testing.assert_array_equal(layout.local_indices(nodes),
                                          np.arange(nodes.size))
            np.testing.assert_array_equal(nodes[layout.local_of[nodes]], nodes)

    def test_translate_pairs_owner_and_local(self, layout):
        ids = np.array([3, 17, 42, 59])
        owners, locals_ = layout.translate(ids)
        np.testing.assert_array_equal(owners, layout.owners(ids))
        np.testing.assert_array_equal(locals_, layout.local_indices(ids))

    def test_partition_sizes_sum_to_num_nodes(self, layout):
        assert int(layout.partition_sizes().sum()) == layout.num_nodes

    def test_empty_ids_ok(self, layout):
        assert layout.owners(np.empty(0, dtype=np.int64)).size == 0

    def test_out_of_range_id_raises(self, layout):
        with pytest.raises(ValueError, match="outside"):
            layout.owners(np.array([60]))
        with pytest.raises(ValueError, match="outside"):
            layout.local_indices(np.array([-1]))

    def test_bad_partition_id_raises(self, layout):
        with pytest.raises(ValueError):
            layout.nodes_of(4)


class TestPartitionerVectorisation:
    def test_custom_hash_assign_many_matches_assign(self):
        partitioner = HashPartitioner(6, hash_fn=lambda node: (node ^ 21) * 13)
        ids = np.arange(50, dtype=np.int64)
        expected = np.array([partitioner.assign(int(n)) for n in ids])
        np.testing.assert_array_equal(partitioner.assign_many(ids), expected)

    def test_custom_hash_assign_many_empty(self):
        partitioner = HashPartitioner(3, hash_fn=lambda node: node + 1)
        assert partitioner.assign_many(np.empty(0, dtype=np.int64)).size == 0

    def test_custom_hash_wider_than_int64(self):
        """Hash values beyond int64 (e.g. md5 placements) must not overflow."""
        partitioner = HashPartitioner(5, hash_fn=lambda node: (node + 3) ** 23)
        ids = np.arange(40, dtype=np.int64)
        expected = np.array([partitioner.assign(int(n)) for n in ids])
        np.testing.assert_array_equal(partitioner.assign_many(ids), expected)


class TestPartitionGraphWithLayout:
    def test_partitions_match_plain_partition_graph(self, small_graph):
        partitioner = HashPartitioner(5)
        plain = partition_graph(small_graph, partitioner)
        with_layout, layout = partition_graph_with_layout(small_graph, partitioner)
        assert layout.num_nodes == small_graph.num_nodes
        for p, q in zip(plain, with_layout):
            np.testing.assert_array_equal(p.node_ids, q.node_ids)
            np.testing.assert_array_equal(p.out_src, q.out_src)
            np.testing.assert_array_equal(p.out_dst, q.out_dst)

    def test_layout_agrees_with_partitions(self, small_graph):
        partitions, layout = partition_graph_with_layout(small_graph, HashPartitioner(4))
        for partition in partitions:
            np.testing.assert_array_equal(layout.nodes_of(partition.partition_id),
                                          partition.node_ids)
            owners = layout.owners(partition.node_ids)
            assert np.all(owners == partition.partition_id)

    def test_precomputed_layout_reused(self, small_graph):
        partitioner = HashPartitioner(4)
        layout = ClusterLayout.build(small_graph.num_nodes, partitioner)
        partitions, returned = partition_graph_with_layout(
            small_graph, partitioner, layout)
        assert returned is layout
        assert len(partitions) == 4

    def test_mismatched_layout_rejected(self, small_graph):
        layout = ClusterLayout.build(small_graph.num_nodes, HashPartitioner(3))
        with pytest.raises(ValueError, match="layout covers"):
            partition_graph_with_layout(small_graph, HashPartitioner(4), layout)
