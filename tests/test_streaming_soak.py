"""Short soak runs: clean steady state, reproducibility, crash recovery.

These are the tier-1 soaks — a few simulated seconds each, every inference
tick checked against the un-faulted oracle.  The long (nightly) soak lives in
``benchmarks/test_bench_streaming_soak.py`` behind ``$REPRO_SOAK_SECONDS``.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.executor import available_executors
from repro.streaming.faults import FaultEvent, FaultPlan
from repro.streaming.soak import (
    ARTIFACT_NAME,
    SOAK_SECONDS_ENV,
    SOAK_SEED_ENV,
    SoakConfig,
    dump_report,
    run_soak,
    soak_seconds_from_env,
    soak_seed_from_env,
)
from repro.streaming.workload import WorkloadConfig

PROCESS_AVAILABLE = "process" in available_executors()

SHORT = WorkloadConfig(seed=5, ticks=6, tenants=2, deltas_per_tick=2,
                       infer_every=2, snapshot_every=3, sliding_window=2)


def small_soak(**overrides) -> SoakConfig:
    defaults = dict(workload=SHORT, graph_nodes=120, num_workers=2,
                    feature_dim=6, num_classes=3)
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestSteadyState:
    def test_gateway_soak_is_clean_and_accountable(self):
        # executor=None follows $REPRO_EXECUTOR, so the CI matrix runs this
        # same soak under both substrates.
        report = run_soak(small_soak())
        assert report.clean
        assert report.mismatches == 0 and report.first_mismatch_tick == -1
        assert report.deltas_delivered == report.trace_deltas
        assert report.infers_served == report.trace_infers + report.trace_snapshots
        assert report.oracle_checks == report.infers_served
        assert report.trace_snapshots > 0
        assert set(report.snapshot_digests) == {"0", "1"}
        assert report.crashes == 0 and report.fault_schedule == []

    def test_report_round_trips_through_json(self, tmp_path):
        report = run_soak(small_soak())
        path = dump_report(report, directory=str(tmp_path))
        assert path.name == ARTIFACT_NAME
        payload = json.loads(path.read_text())
        assert payload["mismatches"] == 0
        assert payload["trace_digest"] == report.trace_digest
        assert payload["snapshot_digests"] == report.snapshot_digests
        assert "p99_tick_seconds" in payload

    def test_same_seed_reproduces_the_deterministic_summary(self):
        plan = FaultPlan.generate(seed=3, ticks=SHORT.ticks, tenants=2,
                                  kinds=("evict_tenant", "delay_deltas"),
                                  rate=0.4)
        config = small_soak(faults=plan, executor="serial")
        first = run_soak(config)
        second = run_soak(config)
        assert first.deterministic_summary() == second.deterministic_summary()
        assert first.fault_digest == plan.digest

    def test_bare_pool_path_matches_the_gateway_path(self):
        # Same trace, same seed — the gateway front-end must not change what
        # gets computed, so the temporal snapshot digests agree exactly.
        gateway = run_soak(small_soak(executor="serial"))
        bare = run_soak(small_soak(executor="serial", use_gateway=False))
        assert bare.clean
        assert bare.snapshot_digests == gateway.snapshot_digests
        assert bare.trace_digest == gateway.trace_digest


class TestFaultedSoaks:
    @pytest.mark.skipif(not PROCESS_AVAILABLE,
                        reason="process executor unavailable")
    def test_worker_kills_recover_mid_stream(self):
        plan = FaultPlan(seed=0, ticks=SHORT.ticks, events=(
            FaultEvent(tick=1, kind="kill_worker", tenant=0),
            FaultEvent(tick=3, kind="kill_worker", tenant=1, slot=1)))
        report = run_soak(small_soak(faults=plan, executor="process"))
        assert report.crashes >= 1
        assert report.recoveries == report.crashes
        assert report.unrecovered == 0
        assert report.clean, "post-recovery scores diverged from the oracle"
        assert all(a <= 3 for a in report.recovery_attempts)
        assert any("killed worker pid" in note for note in report.fault_notes)

    def test_evictions_and_delays_leave_the_stream_clean(self):
        plan = FaultPlan(seed=0, ticks=SHORT.ticks, events=(
            FaultEvent(tick=1, kind="evict_tenant", tenant=0),
            FaultEvent(tick=2, kind="delay_deltas", tenant=0),
            FaultEvent(tick=2, kind="delay_deltas", tenant=1),
            FaultEvent(tick=4, kind="evict_tenant", tenant=1)))
        report = run_soak(small_soak(faults=plan, executor="serial"))
        assert report.clean
        # Delayed deltas still arrive (as the next tick's burst) — nothing
        # is dropped from the logical stream.
        assert report.deltas_delivered == report.trace_deltas
        assert len(report.fault_notes) == 4
        assert report.fault_schedule == plan.schedule()


class TestResourceCeilings:
    @pytest.mark.skipif(not PROCESS_AVAILABLE,
                        reason="process executor unavailable")
    def test_shm_segments_plateau_under_edge_churn(self):
        # Pure edge-delta churn forces a wholesale src/dst array swap every
        # tick; the PR-5 segment-leak fix means the parent-side shm census
        # must plateau — a 200-tick run ends with exactly as many segments
        # as a 20-tick run of the same stream.
        def churn(ticks: int) -> SoakConfig:
            return small_soak(
                workload=WorkloadConfig(seed=13, ticks=ticks, tenants=1,
                                        deltas_per_tick=1,
                                        feature_fraction=0.0,
                                        infer_every=20),
                executor="process", use_gateway=False, graph_nodes=80)

        short = run_soak(churn(20))
        long = run_soak(churn(200))
        assert long.clean and short.clean
        assert short.final_shm_segments > 0
        assert long.final_shm_segments == short.final_shm_segments
        assert long.max_shm_segments == short.max_shm_segments

    @pytest.mark.parametrize("shadow_nodes", [False, True])
    def test_stable_hub_edge_churn_never_replans(self, shadow_nodes):
        # The stable-hub SLO: with the hub threshold pinned high, pure
        # edge-delta churn must patch every cached plan in place — zero
        # delta-forced re-plans over the whole stream, shadow rewrite on or
        # off (position-stable mirror assignment).
        config = small_soak(
            workload=WorkloadConfig(seed=17, ticks=12, tenants=2,
                                    deltas_per_tick=2, feature_fraction=0.0,
                                    infer_every=3, snapshot_every=4,
                                    sliding_window=2),
            executor="serial", use_gateway=False, graph_nodes=80,
            shadow_nodes=shadow_nodes)
        report = run_soak(config)
        assert report.clean
        assert report.deltas_delivered == report.trace_deltas
        assert report.replans == 0


class TestEnvKnobs:
    def test_soak_seconds_default_and_override(self, monkeypatch):
        monkeypatch.delenv(SOAK_SECONDS_ENV, raising=False)
        assert soak_seconds_from_env(30) == 30
        monkeypatch.setenv(SOAK_SECONDS_ENV, "600")
        assert soak_seconds_from_env(30) == 600

    def test_soak_seconds_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(SOAK_SECONDS_ENV, "soon")
        with pytest.raises(ValueError, match="not an integer"):
            soak_seconds_from_env()
        monkeypatch.setenv(SOAK_SECONDS_ENV, "0")
        with pytest.raises(ValueError, match="positive"):
            soak_seconds_from_env()

    def test_soak_seed_default_and_override(self, monkeypatch):
        monkeypatch.delenv(SOAK_SEED_ENV, raising=False)
        assert soak_seed_from_env(7) == 7
        monkeypatch.setenv(SOAK_SEED_ENV, "-3")
        assert soak_seed_from_env(7) == -3
        monkeypatch.setenv(SOAK_SEED_ENV, "nope")
        with pytest.raises(ValueError, match="not an integer"):
            soak_seed_from_env()
