"""Tests for hub-node strategy planning, broadcast blocks and shadow nodes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph, star_graph
from repro.graph.graph import Graph
from repro.inference.config import StrategyConfig
from repro.inference.shadow import apply_shadow_nodes
from repro.inference.strategies import (
    BroadcastMessageBlock,
    build_strategy_plan,
    hub_threshold,
    select_hubs,
    split_hub_edges,
)
from repro.pregel.vertex import MessageBlock


class TestHubThreshold:
    def test_paper_formula(self):
        # 1e9 edges over 1000 workers with lambda 0.1 -> threshold 100000 (paper example)
        assert hub_threshold(1_000_000_000, 1000, 0.1) == 100_000

    def test_override(self):
        assert hub_threshold(1_000_000, 10, override=123) == 123

    def test_never_below_one(self):
        assert hub_threshold(5, 1000) == 1

    def test_scales_with_lambda(self):
        assert hub_threshold(10_000, 10, hub_lambda=0.2) == 2 * hub_threshold(10_000, 10, 0.1)


class TestStrategyPlan:
    def test_sage_gets_partial_gather_gat_does_not(self, small_graph):
        config = StrategyConfig(partial_gather=True)
        sage_plan = build_strategy_plan(build_model("sage", small_graph.feature_dim, 16, 4),
                                        small_graph, 4, config, has_edge_features=False)
        gat_plan = build_strategy_plan(build_model("gat", small_graph.feature_dim, 16, 4),
                                       small_graph, 4, config, has_edge_features=False)
        assert all(layer.partial_gather for layer in sage_plan.layer_strategies)
        assert not any(layer.partial_gather for layer in gat_plan.layer_strategies)
        assert all(layer.combiner is None for layer in gat_plan.layer_strategies)

    def test_partial_gather_disabled_globally(self, small_graph):
        plan = build_strategy_plan(build_model("sage", small_graph.feature_dim, 16, 4),
                                   small_graph, 4, StrategyConfig(partial_gather=False),
                                   has_edge_features=False)
        assert not any(layer.partial_gather for layer in plan.layer_strategies)

    def test_broadcast_disabled_when_messages_depend_on_edges(self, small_graph):
        model = build_model("sage", small_graph.feature_dim, 16, 4, edge_dim=3)
        plan = build_strategy_plan(model, small_graph, 4,
                                   StrategyConfig(broadcast=True), has_edge_features=True)
        assert not any(layer.broadcast for layer in plan.layer_strategies)
        # Without edge features in the graph, the same model can broadcast.
        plan2 = build_strategy_plan(model, small_graph, 4,
                                    StrategyConfig(broadcast=True), has_edge_features=False)
        assert all(layer.broadcast for layer in plan2.layer_strategies)

    def test_hub_detection_uses_out_degree(self):
        star = star_graph(100, direction="out")
        model = build_model("sage", star.feature_dim, 8, 2)
        plan = build_strategy_plan(model, star, 4, StrategyConfig(broadcast=True),
                                   has_edge_features=False)
        assert 0 in plan.hub_set
        assert plan.threshold >= 1

    def test_threshold_override_in_plan(self, powerlaw_out_graph):
        model = build_model("sage", powerlaw_out_graph.feature_dim, 8, 2)
        plan = build_strategy_plan(model, powerlaw_out_graph, 4,
                                   StrategyConfig(hub_threshold_override=10),
                                   has_edge_features=False)
        assert plan.threshold == 10
        assert plan.out_degree_hubs.size > 0

    def test_split_hub_edges(self):
        src = np.array([0, 1, 0, 2, 0])
        hub_rows, plain_rows = split_hub_edges(src, {0})
        np.testing.assert_array_equal(hub_rows, [0, 2, 4])
        np.testing.assert_array_equal(plain_rows, [1, 3])

    def test_split_hub_edges_empty_hub_set(self):
        src = np.array([0, 1, 2])
        hub_rows, plain_rows = split_hub_edges(src, set())
        assert hub_rows.size == 0
        assert plain_rows.size == 3

    def test_split_hub_edges_array_matches_set_semantics(self):
        # The hot path passes the plan's sorted hub array; the vectorised
        # split must be byte-identical to the old per-element set membership.
        rng = np.random.default_rng(3)
        src = rng.integers(0, 50, size=500)
        hubs = np.unique(rng.integers(0, 50, size=7)).astype(np.int64)
        hub_rows, plain_rows = split_hub_edges(src, hubs)
        hub_set = set(int(h) for h in hubs)
        expected = np.fromiter((int(s) in hub_set for s in src), dtype=bool,
                               count=src.size)
        np.testing.assert_array_equal(hub_rows, np.nonzero(expected)[0])
        np.testing.assert_array_equal(plain_rows, np.nonzero(~expected)[0])


class TestHubDefinitionUnified:
    """Regression: a node at exactly the threshold is a hub for *every* strategy."""

    def tie_graph(self, threshold=4):
        # Node 0 has out-degree exactly `threshold`; node 1 exceeds it.
        src = np.concatenate([np.zeros(threshold, dtype=np.int64),
                              np.ones(threshold + 3, dtype=np.int64)])
        dst = np.arange(2, 2 + src.size, dtype=np.int64)
        num_nodes = int(dst.max()) + 1
        return Graph(src=src, dst=dst,
                     node_features=np.ones((num_nodes, 3)), num_nodes=num_nodes)

    def test_select_hubs_includes_tie_degree(self):
        degrees = np.array([4, 7, 0, 3])
        np.testing.assert_array_equal(select_hubs(degrees, 4), [0, 1])

    def test_strategy_plan_and_shadow_agree_on_ties(self, monkeypatch):
        import repro.inference.shadow as shadow_mod
        threshold = 4
        graph = self.tie_graph(threshold)
        model = build_model("sage", graph.feature_dim, 8, 2)
        plan = build_strategy_plan(model, graph, 2,
                                   StrategyConfig(hub_threshold_override=threshold),
                                   has_edge_features=False)
        assert 0 in plan.hub_set and 1 in plan.hub_set

        seen = {}
        real = shadow_mod.select_hubs
        monkeypatch.setattr(shadow_mod, "select_hubs",
                            lambda degrees, t: seen.setdefault("hubs", real(degrees, t)))
        shadow = apply_shadow_nodes(graph, threshold, num_workers=2)
        # The shadow rewrite considers the same hub set as the strategy plan
        # (the old `>` scan skipped tie-degree node 0 entirely)...
        np.testing.assert_array_equal(seen["hubs"], plan.out_degree_hubs)
        # ...and a tie-degree hub needs no mirrors (one out-edge group), while
        # the above-threshold hub is still split.
        assert 0 not in shadow.replica_map
        assert 1 in shadow.replica_map


class TestBroadcastMessageBlock:
    def make_block(self, num_edges=100, dim=16):
        dst = np.arange(num_edges)
        refs = np.zeros(num_edges, dtype=np.int64)
        payload = np.random.default_rng(0).normal(size=(1, dim))
        return BroadcastMessageBlock(dst_ids=dst, payload_refs=refs, unique_payloads=payload)

    def test_dense_payload_expands_refs(self):
        block = self.make_block(num_edges=5, dim=3)
        dense = block.dense_payload()
        assert dense.shape == (5, 3)
        assert np.allclose(dense, dense[0])

    def test_nbytes_smaller_than_dense_block(self):
        num_edges, dim = 200, 32
        broadcast = self.make_block(num_edges, dim)
        dense = MessageBlock(dst_ids=np.arange(num_edges),
                             payload=np.zeros((num_edges, dim)))
        assert broadcast.nbytes() < dense.nbytes()

    def test_not_combinable(self):
        assert self.make_block().combinable is False
        assert MessageBlock(dst_ids=np.array([0]), payload=np.zeros((1, 2))).combinable is True

    def test_take_preserves_payload_mapping(self):
        dst = np.array([10, 20, 30, 40])
        refs = np.array([0, 1, 0, 1])
        payloads = np.array([[1.0, 1.0], [2.0, 2.0]])
        block = BroadcastMessageBlock(dst_ids=dst, payload_refs=refs, unique_payloads=payloads)
        piece = block.take(np.array([1, 3]))
        assert isinstance(piece, BroadcastMessageBlock)
        np.testing.assert_allclose(piece.dense_payload(), [[2.0, 2.0], [2.0, 2.0]])
        np.testing.assert_array_equal(piece.dst_ids, [20, 40])

    def test_take_drops_unused_payloads(self):
        dst = np.array([1, 2])
        refs = np.array([0, 1])
        payloads = np.array([[1.0], [2.0]])
        block = BroadcastMessageBlock(dst_ids=dst, payload_refs=refs, unique_payloads=payloads)
        piece = block.take(np.array([1]))
        assert piece.unique_payloads.shape[0] == 1
        np.testing.assert_allclose(piece.dense_payload(), [[2.0]])


class TestShadowNodes:
    def test_no_hubs_returns_original_graph(self, small_graph):
        plan = apply_shadow_nodes(small_graph, threshold=10_000, num_workers=4)
        assert plan.graph is small_graph
        assert plan.num_mirrors == 0

    def test_star_hub_is_split(self):
        star = star_graph(100, direction="out")
        plan = apply_shadow_nodes(star, threshold=10, num_workers=4)
        assert plan.num_mirrors > 0
        assert 0 in plan.replica_map
        # Total edges preserved and every edge still points at the same dst.
        assert plan.graph.num_edges == star.num_edges
        np.testing.assert_array_equal(np.sort(plan.graph.dst), np.sort(star.dst))

    def test_mirror_out_degrees_bounded(self):
        star = star_graph(200, direction="out")
        plan = apply_shadow_nodes(star, threshold=25, num_workers=16)
        out_degrees = plan.graph.out_degrees()
        replicas = plan.replica_map[0]
        for replica in replicas:
            assert out_degrees[replica] <= 25 + 25  # ceil splitting keeps groups near threshold

    def test_mirror_features_copied(self):
        star = star_graph(60, direction="out")
        plan = apply_shadow_nodes(star, threshold=10, num_workers=8)
        for mirror, origin in plan.mirror_origin.items():
            np.testing.assert_allclose(plan.graph.node_features[mirror],
                                       star.node_features[origin])

    def test_mirror_count_capped_by_workers(self):
        star = star_graph(1000, direction="out")
        plan = apply_shadow_nodes(star, threshold=10, num_workers=4)
        assert len(plan.replica_map[0]) <= 4

    def test_expand_destinations_duplicates_rows(self):
        star = star_graph(100, direction="out")
        plan = apply_shadow_nodes(star, threshold=10, num_workers=4)
        replicas = plan.replica_map[0]
        dst = np.array([0, 5])
        payload = np.array([[1.0, 2.0], [3.0, 4.0]])
        new_dst, new_payload, new_counts = plan.expand_destinations(dst, payload)
        assert new_dst.size == 1 + replicas.size
        # Every replica receives the hub's row; node 5's row is untouched.
        hub_rows = new_payload[np.isin(new_dst, replicas)]
        assert np.allclose(hub_rows, [1.0, 2.0])

    def test_expand_destinations_noop_without_replicas(self, small_graph):
        plan = apply_shadow_nodes(small_graph, threshold=10_000, num_workers=4)
        dst = np.array([1, 2])
        payload = np.ones((2, 3))
        out_dst, out_payload, _ = plan.expand_destinations(dst, payload)
        np.testing.assert_array_equal(out_dst, dst)
        np.testing.assert_allclose(out_payload, payload)

    def test_invalid_threshold(self, small_graph):
        with pytest.raises(ValueError):
            apply_shadow_nodes(small_graph, threshold=0, num_workers=4)


@settings(max_examples=25, deadline=None)
@given(num_leaves=st.integers(min_value=5, max_value=300),
       threshold=st.integers(min_value=2, max_value=50),
       num_workers=st.integers(min_value=2, max_value=16))
def test_shadow_nodes_preserve_edge_multiset(num_leaves, threshold, num_workers):
    """Property: shadow-node preprocessing never adds, drops or redirects edges —
    it only reassigns their source to a mirror of the original source."""
    star = star_graph(num_leaves, direction="out", seed=1)
    plan = apply_shadow_nodes(star, threshold=threshold, num_workers=num_workers)
    assert plan.graph.num_edges == star.num_edges
    np.testing.assert_array_equal(np.sort(plan.graph.dst), np.sort(star.dst))
    for edge_index in range(plan.graph.num_edges):
        source = int(plan.graph.src[edge_index])
        origin = plan.mirror_origin.get(source, source)
        assert origin == int(star.src[edge_index])
