"""Strict-typing gate: ``mypy --strict`` over the serving-critical packages.

Runs only when mypy is installed (the CI static-analysis job installs it;
the minimal local environment may not have it, in which case the test skips
rather than failing -- the annotations themselves are still exercised at
runtime by every other test).
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="mypy not installed; CI runs this gate")

REPO_ROOT = Path(__file__).parent.parent
STRICT_PACKAGES = ["repro.inference", "repro.serving", "repro.cluster",
                   "repro.analysis"]


def test_mypy_strict_on_serving_packages():
    command = [sys.executable, "-m", "mypy",
               "--config-file", str(REPO_ROOT / "mypy.ini")]
    for package in STRICT_PACKAGES:
        command += ["-p", package]
    result = subprocess.run(command, cwd=REPO_ROOT,
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, (
        f"mypy --strict failed:\n{result.stdout}\n{result.stderr}")


def test_py_typed_marker_shipped():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
