"""Cross-backend × cross-executor conformance suite.

Every backend reachable through :func:`repro.inference.backends.available_backends`
— the built-ins and anything a plugin adds via ``register_backend`` — is
contract-checked here against the serving guarantees the rest of the system
assumes, under **every** executor substrate
(:func:`repro.cluster.executor.available_executors`):

1. **Score equivalence** — a session's scores match the traditional k-hop
   reference pipeline (bit-identical for the exact backends, within the 1e-9
   equivalence tolerance otherwise), on random power-law graphs with shadow
   nodes and broadcast enabled.
2. **Executor equivalence** — the process executor produces the same scores
   as the serial executor: bit-identical on ``pregel`` and ``khop``, within
   1e-9 on ``mapreduce`` (in practice bit-identical there too — executors
   never change batch shapes).
3. **Staleness contract** — an out-of-band in-place mutation after
   ``prepare()`` raises :class:`StalePlanError` instead of serving stale
   scores.
4. **Delta fallback** — ``apply_delta`` keeps serving *current* scores
   whether the backend patches the plan in place (optional hook) or takes the
   full-recompute default, and ``infer(mode="incremental")`` agrees with a
   fresh prepare+infer even where no incremental hook exists.
5. **Plan reuse** — ``infer_many`` never re-plans (backend spy) and repeated
   runs are bit-identical to each other.

A backend registered by third-party code inherits this suite for free: the
parametrisation is over the live registry, not a hard-coded list.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.khop_pipeline import TraditionalConfig, TraditionalPipeline
from repro.cluster.executor import available_executors
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StalePlanError,
    StrategyConfig,
)
from repro.inference.backends import available_backends

BACKENDS = sorted(available_backends())
EXECUTORS = sorted(available_executors())
NUM_WORKERS = 4
SEEDS = [0, 1, 2]

#: backends whose scores are bit-exact vs the k-hop reference and across
#: executors; everything else gets the repo-wide 1e-9 equivalence tolerance
#: (mapreduce batches several nodes per matmul, which shifts BLAS
#: accumulation order by ~1e-15).
EXACT_BACKENDS = {"pregel", "khop"}


def make_graph(seed: int, num_nodes: int = 400):
    """Power-law (out-skewed) graph — the hub-strategy regime."""
    return powerlaw_graph(num_nodes=num_nodes, avg_degree=6.0, skew="out",
                          feature_dim=8, num_classes=3, seed=seed)


def make_model():
    return build_model("sage", 8, 16, 3, num_layers=2, seed=1)


def make_config(backend: str, executor: str) -> InferenceConfig:
    """Shadow nodes + broadcast + partial-gather on, per the acceptance bar."""
    return InferenceConfig(
        backend=backend, num_workers=NUM_WORKERS, executor=executor,
        strategies=StrategyConfig(partial_gather=True, broadcast=True,
                                  shadow_nodes=True, hub_threshold_override=15))


def khop_reference(model, graph) -> np.ndarray:
    """The traditional full-neighbourhood pipeline (deterministic baseline)."""
    outcome = TraditionalPipeline(model, TraditionalConfig(
        num_workers=NUM_WORKERS)).run(graph, compute_scores=True,
                                      compute_cost=False)
    return outcome.scores


def assert_scores_match(backend: str, actual: np.ndarray,
                        expected: np.ndarray) -> None:
    if backend in EXACT_BACKENDS:
        np.testing.assert_array_equal(actual, expected)
    else:
        np.testing.assert_allclose(actual, expected, atol=1e-9)


class _PlanSpy:
    """Delegating backend wrapper counting ``plan()`` calls."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.plan_calls = 0

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def plan(self, model, graph, config):
        self.plan_calls += 1
        return self._inner.plan(model, graph, config)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendConformance:
    def test_scores_match_khop_reference(self, backend, executor):
        graph = make_graph(seed=7)
        model = make_model()
        expected = khop_reference(model, graph)
        session = InferenceSession(model, make_config(backend, executor))
        session.prepare(graph)
        try:
            # Cross-backend agreement is tolerance-level by design: different
            # substrates batch different shapes through BLAS (~1e-15 drift).
            # Bit-exactness is asserted where it is promised — same backend
            # across runs/executors (the other tests in this suite).
            np.testing.assert_allclose(session.infer().scores, expected,
                                       atol=1e-9)
        finally:
            session.close()

    def test_staleness_contract(self, backend, executor):
        graph = make_graph(seed=11)
        model = make_model()
        session = InferenceSession(model, make_config(backend, executor))
        session.prepare(graph)
        try:
            session.infer()
            graph.node_features[0, 0] += 1.0    # out-of-band mutation
            with pytest.raises(StalePlanError):
                session.infer()
        finally:
            session.close()

    def test_delta_keeps_scores_current(self, backend, executor):
        """Feature + edge deltas: in-place hook or full-recompute fallback,
        the next infer() — full and incremental — serves post-delta scores."""
        rng = np.random.default_rng(23)
        graph = make_graph(seed=13)
        model = make_model()
        session = InferenceSession(model, make_config(backend, executor))
        session.prepare(graph)
        try:
            session.infer()
            node_ids = rng.choice(graph.num_nodes, size=12, replace=False)
            delta = GraphDelta(
                node_ids=node_ids,
                node_features=rng.normal(size=(12, graph.feature_dim)),
                added_src=rng.choice(graph.num_nodes, size=5),
                added_dst=rng.choice(graph.num_nodes, size=5),
            )
            session.apply_delta(delta)
            after = session.infer().scores
            incremental = session.infer(mode="incremental").scores

            fresh = InferenceSession(model, make_config(backend, executor))
            fresh.prepare(graph)        # graph already carries the delta
            expected = fresh.infer().scores
            fresh.close()
            assert_scores_match(backend, after, expected)
            assert_scores_match(backend, incremental, expected)
        finally:
            session.close()

    def test_infer_many_reuses_the_plan(self, backend, executor):
        graph = make_graph(seed=17)
        model = make_model()
        session = InferenceSession(model, make_config(backend, executor))
        spy = _PlanSpy(session.backend)
        session.backend = spy
        session.prepare(graph)
        try:
            results = session.infer_many(3)
            assert spy.plan_calls == 1      # the prepare(), nothing since
            for result in results[1:]:
                np.testing.assert_array_equal(result.scores, results[0].scores)
        finally:
            session.close()


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeDeltaContract:
    """In-place edge deltas must be indistinguishable from a re-plan.

    A hub-preserving edge delta (adds from deep non-hub sources, removals
    whose source stays a deep non-hub) under shadow nodes must return
    ``DeltaOutcome(in_place=True)`` on the backends with delta hooks, and the
    following full *and* incremental inferences must match a fresh
    ``prepare()+infer()`` on the post-delta graph — bit-identical for the
    exact backends, within 1e-9 on mapreduce — on both executors.
    """

    def test_in_place_edge_delta_matches_fresh_replan(self, backend, executor):
        from repro.inference.backends import get_backend

        rng = np.random.default_rng(29)
        graph = make_graph(seed=19)
        model = make_model()
        session = InferenceSession(model, make_config(backend, executor))
        session.prepare(graph)
        has_hook = getattr(get_backend(backend), "apply_delta", None) is not None
        try:
            session.infer()
            threshold = session.plan.strategy_plan.threshold
            degrees = graph.out_degrees()
            safe_sources = np.nonzero(degrees < threshold - 3)[0]
            removable = np.nonzero(degrees[graph.src] < threshold - 3)[0]
            delta = GraphDelta(
                added_src=rng.choice(safe_sources, size=20, replace=False),
                added_dst=rng.integers(0, graph.num_nodes, size=20),
                removed_edge_ids=rng.choice(removable, size=10, replace=False),
            )
            outcome = session.apply_delta(delta)
            if has_hook:
                assert outcome.in_place, outcome.reason
            after = session.infer().scores
            incremental = session.infer(mode="incremental").scores

            fresh = InferenceSession(model, make_config(backend, executor))
            fresh.prepare(graph)        # graph already carries the delta
            expected = fresh.infer().scores
            fresh.close()
            assert_scores_match(backend, after, expected)
            assert_scores_match(backend, incremental, expected)
        finally:
            session.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestExecutorEquivalence:
    """Acceptance bar: process scores == serial scores, property-tested on
    random power-law graphs with shadow nodes and broadcast enabled."""

    def test_process_matches_serial(self, backend, seed):
        if "process" not in EXECUTORS:  # pragma: no cover - registry safety
            pytest.skip("process executor unavailable")
        graph = make_graph(seed=seed)
        model = make_model()

        serial = InferenceSession(model, make_config(backend, "serial"))
        serial.prepare(graph)
        expected = serial.infer().scores
        serial.close()

        process = InferenceSession(model, make_config(backend, "process"))
        process.prepare(graph)
        try:
            actual = process.infer().scores
        finally:
            process.close()
        assert_scores_match(backend, actual, expected)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestStreamingDeltaConformance:
    """Backends advertising ``apply_delta`` must survive a sustained stream.

    50 seeded interleaved deltas (feature refreshes + edge churn) are pushed
    through twin sessions over identical graph copies: session A applies each
    delta eagerly (``defer=False``), session B lets them coalesce in its
    :class:`DeltaBuffer` (``defer=True``) and flushes at each inference
    checkpoint.  Every 10 deltas both sides infer — scores must agree to the
    backend's conformance bar (bit-exact for the exact backends, 1e-9
    otherwise) at every checkpoint, not just at the end.
    """

    def test_coalesced_stream_matches_eager_application(self, backend,
                                                        executor):
        from repro.inference.backends import get_backend
        if getattr(get_backend(backend), "apply_delta", None) is None:
            pytest.skip(f"backend {backend!r} has no apply_delta hook")

        rng = np.random.default_rng(41)
        graph_eager = make_graph(seed=17)
        graph_coalesced = make_graph(seed=17)
        model = make_model()
        num_edges = graph_eager.num_edges     # virtual post-delta edge count
        num_nodes = graph_eager.num_nodes

        def next_delta() -> GraphDelta:
            nonlocal num_edges
            if rng.random() < 0.6:
                size = int(rng.integers(1, 8))
                ids = rng.choice(num_nodes, size=size, replace=False)
                return GraphDelta(
                    node_ids=ids,
                    node_features=rng.standard_normal((size, 8)))
            add = int(rng.integers(1, 5))
            remove = min(int(rng.integers(0, 3)), num_edges - 1)
            removed = (rng.choice(num_edges, size=remove, replace=False)
                       if remove else None)
            num_edges += add - remove
            return GraphDelta(
                added_src=rng.integers(0, num_nodes, size=add),
                added_dst=rng.integers(0, num_nodes, size=add),
                removed_edge_ids=removed)

        eager = InferenceSession(model, make_config(backend, executor))
        eager.prepare(graph_eager)
        coalesced = InferenceSession(model, make_config(backend, executor))
        coalesced.prepare(graph_coalesced)
        checkpoints = 0
        try:
            for index in range(50):
                delta = next_delta()
                eager.apply_delta(delta, defer=False)
                coalesced.apply_delta(delta, defer=True)
                if (index + 1) % 10 == 0:
                    mode = "incremental" if (index + 1) % 20 == 0 else "full"
                    expected = eager.infer(mode=mode).scores
                    actual = coalesced.infer(mode=mode).scores
                    assert_scores_match(backend, actual, expected)
                    checkpoints += 1
        finally:
            eager.close()
            coalesced.close()
        assert checkpoints == 5
