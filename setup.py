"""Classic setuptools entry point.

The execution environment has no ``wheel`` package available offline, so PEP
517 editable installs (which build a wheel) fail.  This setup lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the classic
``setup.py develop`` path.  Metadata is declared here directly (there is no
``pyproject.toml``); ``package_data`` ships the ``py.typed`` marker so type
checkers in downstream projects see the package's inline annotations
(PEP 561).
"""

from setuptools import find_packages, setup

setup(
    name="repro-inferturbo",
    version="0.8.0",
    description="Reproduction of an InferTurbo-style big-graph GNN inference "
                "system: Pregel/MapReduce backends, session pool, async "
                "serving gateway, static-analysis contracts.",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    zip_safe=False,
)
