"""Multi-tenant serving: one model, many tenant graphs, coalesced deltas.

The deployment the serving tier targets: one trained risk model scores many
tenants' transaction graphs on a schedule, each graph drifting between ticks.
This example walks the whole tier:

1. a :class:`SessionPool` prepares each tenant graph once (plan cache keyed
   by graph fingerprint, LRU-bounded capacity) — tick 2+ hits the cache and
   skips strategy planning, shadow rewrite and partitioning entirely;
2. between ticks, each tenant's feature refreshes arrive as several small
   ``GraphDelta``\\ s applied with ``defer=True`` — the pool coalesces them
   and applies **one** merged patch per tenant per tick;
3. ``infer(mode="incremental")`` then recomputes only each delta's k-hop
   reach, and the example proves the served scores match a from-scratch
   plan on the drifted graph bit for bit.

Run:  PYTHONPATH=src python examples/multi_tenant_pool.py
"""

from __future__ import annotations

import time

import numpy as np

from example_utils import scaled
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    SessionPool,
    StrategyConfig,
)

NUM_TENANTS = 4
DELTAS_PER_TICK = 5


def make_tenant(seed: int):
    return powerlaw_graph(num_nodes=scaled(3000, minimum=300), avg_degree=6.0,
                          skew="out", feature_dim=16, num_classes=5, seed=seed)


def main() -> None:
    rng = np.random.default_rng(0)
    model = build_model("gcn", 16, 32, 5, num_layers=2, seed=0)
    config = InferenceConfig(backend="pregel", num_workers=8,
                             strategies=StrategyConfig(partial_gather=True,
                                                       broadcast=True,
                                                       shadow_nodes=True))
    tenants = [make_tenant(seed) for seed in range(NUM_TENANTS)]

    pool = SessionPool(model, config, capacity=NUM_TENANTS)

    # --- tick 0: every tenant pays one prepare -------------------------- #
    start = time.perf_counter()
    for graph in tenants:
        pool.infer(graph)
    cold = time.perf_counter() - start
    print(f"tick 0 (cold): prepared + scored {NUM_TENANTS} tenant graphs "
          f"in {cold:.3f}s wall  [{pool.stats.describe()}]")

    # --- tick 1: pure plan-cache hits ------------------------------------ #
    start = time.perf_counter()
    for graph in tenants:
        pool.infer(graph)
    warm = time.perf_counter() - start
    print(f"tick 1 (warm): {warm:.3f}s wall — {cold / warm:.1f}x faster, "
          f"zero re-plans  [{pool.stats.describe()}]")

    # --- tick 2: drift + deferred deltas + incremental ------------------- #
    for tenant_id, graph in enumerate(tenants):
        for _ in range(DELTAS_PER_TICK):       # many small refreshes...
            dirty = rng.choice(graph.num_nodes, size=8, replace=False)
            delta = GraphDelta(node_ids=dirty,
                               node_features=rng.standard_normal((8, 16)))
            pool.apply_delta(graph, delta, defer=True)
    start = time.perf_counter()
    results = [pool.infer(graph, mode="incremental") for graph in tenants]
    tick2 = time.perf_counter() - start
    pending = DELTAS_PER_TICK * NUM_TENANTS
    print(f"tick 2 (drift): {pending} deltas coalesced into {NUM_TENANTS} "
          f"merged patches, incremental scoring in {tick2:.3f}s wall")

    # --- proof: identical to planning every tenant from scratch ---------- #
    identical = True
    for graph, result in zip(tenants, results):
        fresh = InferenceSession(build_model("gcn", 16, 32, 5, num_layers=2, seed=0),
                                 config)
        fresh.prepare(graph)
        identical &= bool(np.array_equal(result.scores, fresh.infer().scores))
    print(f"served scores bit-identical to from-scratch plans: {identical}")
    print(pool.describe())


if __name__ == "__main__":
    main()
