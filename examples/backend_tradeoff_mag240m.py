"""Backend trade-off: Pregel vs MapReduce vs the k-hop baseline.

The paper offers two full-graph backends with an explicit trade-off: the
graph-processing (Pregel) backend is faster but holds node/edge state in
memory for the whole job, while the batch-processing (MapReduce) backend
re-shuffles state every round through external storage, trading time for a
much smaller and more elastic memory footprint.  With the backend registry the
traditional k-hop pipeline is a third interchangeable backend, so one loop
over ``InferenceConfig(backend=...)`` quantifies all three sides on a
MAG240M-like graph, using a trained GAT exported to a signature file and
loaded back — the same deployment flow a production run would use.

Run:  python examples/backend_tradeoff_mag240m.py
"""

from __future__ import annotations

import os
import tempfile

from example_utils import scaled
from repro.datasets import load_dataset
from repro.gnn import build_model, export_signature, load_signature
from repro.inference import InferenceConfig, InferenceSession, StrategyConfig
from repro.training import TrainConfig, Trainer


def main() -> None:
    dataset = load_dataset("mag240m", size="small", seed=0)
    graph = dataset.graph
    print(f"dataset: {dataset.name}  nodes={graph.num_nodes}  edges={graph.num_edges}")

    # Train a 2-layer GAT and ship it through a signature directory.
    model = build_model("gat", dataset.feature_dim, 64, dataset.num_classes,
                        num_layers=2, heads=4, seed=0)
    trainer = Trainer(model, graph, TrainConfig(num_epochs=scaled(3), batch_size=64,
                                                fanout=10, seed=0))
    trainer.fit(dataset.train_nodes)

    with tempfile.TemporaryDirectory() as export_dir:
        signature_dir = os.path.join(export_dir, "gat_mag240m")
        export_signature(model).save(signature_dir)
        print(f"exported trained model to {signature_dir}")
        signature = load_signature(signature_dir)

        rows = []
        for backend in ("pregel", "mapreduce", "khop"):
            config = InferenceConfig(backend=backend, num_workers=8,
                                     strategies=StrategyConfig(partial_gather=True))
            session = InferenceSession(signature, config)
            session.prepare(graph)
            result = session.infer()
            peak_memory = max(metric.peak_memory_bytes for metric in result.metrics.instances())
            rows.append((backend, result.cost.wall_clock_seconds, result.cost.cpu_minutes,
                         result.cost.total_bytes / 1e6, peak_memory / 1e6))

    print(f"\n{'backend':<12}{'wall-clock (s)':>16}{'cpu*min':>12}{'MB moved':>12}{'peak MB/worker':>18}")
    for backend, wall, cpu, moved, peak in rows:
        print(f"{backend:<12}{wall:>16.4f}{cpu:>12.5f}{moved:>12.1f}{peak:>18.2f}")

    pregel, mapreduce, khop = rows[0], rows[1], rows[2]
    print(f"\nPregel is {mapreduce[1] / pregel[1]:.1f}x faster; "
          f"MapReduce's peak worker memory is {pregel[4] / mapreduce[4]:.1f}x smaller — "
          f"the trade-off the paper describes (pick per application).")
    print(f"The k-hop baseline pays {khop[2] / pregel[2]:.1f}x the CPU of Pregel for the "
          f"same predictions — the redundant computation full-graph inference removes.")


if __name__ == "__main__":
    main()
