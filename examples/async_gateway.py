"""Async serving gateway: concurrent multi-tenant streams, batched ticks.

The front door of the serving tier: several tenants stream interleaved
feature refreshes and inference requests *concurrently*, and the
:class:`~repro.serving.ServingGateway` turns that traffic into the pool's
efficient shape —

1. each tenant's burst of concurrent requests batches into **one**
   plan-cache-hit tick (ten dashboard refreshes cost one backend run);
2. deltas submitted between (or during!) ticks coalesce into one merged plan
   patch, flushed by the next tick — never visible to the tick already
   executing;
3. different tenants' ticks overlap on the gateway's worker threads, and a
   tenant pushing past its queue bound is rejected with ``Overloaded`` plus a
   retry-after hint instead of degrading everyone else;
4. the example proves the streamed scores are bit-identical to replaying the
   same per-tenant sequence one call at a time against a bare pool.

Run:  PYTHONPATH=src python examples/async_gateway.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from example_utils import scaled
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GatewayConfig,
    GraphDelta,
    InferenceConfig,
    SessionPool,
    StrategyConfig,
)
from repro.serving import Overloaded, ServingGateway

NUM_TENANTS = 3
TICKS = 3                  # streamed rounds per tenant
BURST = 5                  # concurrent requests per tenant per round
FEATURE_DIM = 16


def make_tenant(seed: int):
    return powerlaw_graph(num_nodes=scaled(3000, minimum=300), avg_degree=6.0,
                          skew="out", feature_dim=FEATURE_DIM, num_classes=5,
                          seed=seed)


def make_config() -> InferenceConfig:
    return InferenceConfig(backend="pregel", num_workers=8,
                           strategies=StrategyConfig(partial_gather=True,
                                                     broadcast=True,
                                                     shadow_nodes=True))


def tenant_stream(seed: int, graph) -> list:
    """One tenant's scripted traffic: deltas and request bursts, per round."""
    rng = np.random.default_rng(seed)
    rounds = []
    for _ in range(TICKS):
        dirty = rng.choice(graph.num_nodes, size=8, replace=False)
        rounds.append(GraphDelta(node_ids=dirty,
                                 node_features=rng.standard_normal((8, FEATURE_DIM))))
    return rounds


async def stream_tenant(gateway: ServingGateway, tenant_id: str,
                        rounds: list) -> list:
    """Drive one tenant: submit the round's delta, then fire a burst."""
    scores = []
    for delta in rounds:
        await gateway.submit_delta(tenant_id, delta)
        burst = await asyncio.gather(*(gateway.infer(tenant_id)
                                       for _ in range(BURST)))
        scores.append(burst[0].scores)     # the burst shares one tick's result
    return scores


async def serve() -> None:
    model = build_model("gcn", FEATURE_DIM, 32, 5, num_layers=2, seed=0)
    tenants = {f"tenant-{seed}": make_tenant(seed)
               for seed in range(NUM_TENANTS)}
    streams = {tenant_id: tenant_stream(seed, graph)
               for seed, (tenant_id, graph) in enumerate(tenants.items())}

    pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
    config = GatewayConfig(max_queue_depth=4 * BURST, max_batch=BURST)
    async with ServingGateway(pool, config) as gateway:
        for tenant_id, graph in tenants.items():
            gateway.register(tenant_id, graph)
        await asyncio.gather(*(gateway.warm(tenant_id)
                               for tenant_id in tenants))

        # --- all tenants stream concurrently --------------------------- #
        start = time.perf_counter()
        streamed = dict(zip(streams, await asyncio.gather(*(
            stream_tenant(gateway, tenant_id, rounds)
            for tenant_id, rounds in streams.items()))))
        elapsed = time.perf_counter() - start

        snapshot = gateway.snapshot()
        total_requests = NUM_TENANTS * TICKS * BURST
        print(f"streamed {total_requests} requests + "
              f"{snapshot.deltas} deltas across {NUM_TENANTS} tenants "
              f"in {elapsed:.3f}s wall")
        print(f"batching: {snapshot.requests} requests served by "
              f"{snapshot.ticks} backend tick(s)")
        print(snapshot.describe())

        # --- backpressure: a queue bound turns away the excess ---------- #
        tight = GatewayConfig(max_queue_depth=1, max_batch=1)
        async with ServingGateway(pool, tight) as small_gateway:
            small_gateway.register("tenant-0", tenants["tenant-0"])
            flood = await asyncio.gather(
                *(small_gateway.infer("tenant-0") for _ in range(6)),
                return_exceptions=True)
            rejected = [r for r in flood if isinstance(r, Overloaded)]
            print(f"backpressure: {len(flood) - len(rejected)}/6 admitted, "
                  f"{len(rejected)} rejected "
                  f"(retry after ~{rejected[0].retry_after * 1e3:.0f} ms)"
                  if rejected else
                  "backpressure: queue drained fast enough to admit all 6")

    # --- proof: identical to one-call-at-a-time against a bare pool ------ #
    replay_pool = SessionPool(model, make_config(), capacity=NUM_TENANTS)
    identical = True
    for seed, tenant_id in enumerate(streams):
        graph = make_tenant(seed)                  # same content, fresh arrays
        for round_index, delta in enumerate(tenant_stream(seed, graph)):
            replay_pool.apply_delta(graph, delta, defer=True)
            reference = replay_pool.infer(graph).scores
            identical &= bool(np.array_equal(
                streamed[tenant_id][round_index], reference))
    print(f"streamed scores bit-identical to sequential replay: {identical}")


if __name__ == "__main__":
    asyncio.run(serve())
