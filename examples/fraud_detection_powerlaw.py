"""Fraud detection on a power-law transaction graph — the paper's motivating case.

Financial graphs are the paper's home turf: predictions must be *consistent*
(a customer's risk score cannot change between two runs of the same model) and
the graph has hub accounts with enormous degree.  This example:

1. builds an out-degree-skewed power-law graph standing in for a transaction
   network, with a binary "fraud" label;
2. trains a GraphSAGE risk model on 1% labelled nodes;
3. shows the consistency failure of sampling-based inference (the same nodes
   get different risk classes across runs);
4. opens an :class:`InferenceSession` with all hub-node strategies enabled
   (plan once, score nightly) and shows that (a) predictions are identical
   across runs and (b) the straggler/IO load of the hub-owning workers drops.

Run:  python examples/fraud_detection_powerlaw.py
"""

from __future__ import annotations

import numpy as np

from example_utils import scaled
from repro.baselines import TraditionalConfig, TraditionalPipeline
from repro.datasets import load_dataset
from repro.gnn import build_model
from repro.inference import InferenceConfig, InferenceSession, StrategyConfig
from repro.training import TrainConfig, Trainer


def main() -> None:
    # A transaction-network stand-in: heavy-tailed out-degree, 2 classes.
    dataset = load_dataset("powerlaw", num_nodes=scaled(8_000, minimum=800),
                           avg_degree=10.0, skew="out", seed=1)
    graph = dataset.graph
    out_degrees = graph.out_degrees()
    print(f"transaction graph: {graph.num_nodes} accounts, {graph.num_edges} transfers, "
          f"max out-degree {out_degrees.max()} (hub accounts present)")

    model = build_model("sage", dataset.feature_dim, 32, dataset.num_classes, num_layers=2, seed=0)
    trainer = Trainer(model, graph, TrainConfig(num_epochs=scaled(4), batch_size=32,
                                                fanout=10, seed=0))
    trainer.fit(dataset.train_nodes)

    # --- The consistency problem of sampled inference ------------------- #
    audit_nodes = np.arange(min(512, graph.num_nodes))
    sampled = TraditionalPipeline(model, TraditionalConfig(num_workers=4, fanout=5))
    runs = []
    for seed in range(3):
        outcome = sampled.run(graph, targets=audit_nodes, compute_scores=True, seed=seed)
        runs.append(outcome.scores[audit_nodes].argmax(axis=-1))
    flips = np.mean([(runs[0] != runs[i]).mean() for i in (1, 2)])
    print(f"sampling-based inference: {100 * flips:.1f}% of audited accounts change "
          f"risk class between runs — unacceptable for a financial decision system")

    # --- Full-graph session: plan once, score nightly, consistent -------- #
    strategies = StrategyConfig(partial_gather=True, broadcast=True, shadow_nodes=True)
    config = InferenceConfig(backend="pregel", num_workers=16, strategies=strategies)
    session = InferenceSession(model, config)
    session.prepare(graph)                # strategy plan + shadow rewrite, once
    first, second = session.infer_many(2)  # repeated scoring reuses the plan
    assert np.array_equal(first.scores, second.scores)
    risk_classes = first.predicted_classes()
    print(f"full-graph session: scored all {graph.num_nodes} accounts, "
          f"{(risk_classes == 1).sum()} flagged; repeated run identical ✓")

    # --- Hub-node load balancing ----------------------------------------- #
    base_session = InferenceSession(model, InferenceConfig(
        backend="pregel", num_workers=16,
        strategies=StrategyConfig(partial_gather=False)))
    base = base_session.infer(graph)
    base_out = np.array(list(base.metrics.per_instance("bytes_out").values()))
    tuned_out = np.array(list(first.metrics.per_instance("bytes_out").values()))
    print(f"worst worker output IO: base {base_out.max() / 1e6:.2f} MB -> "
          f"with strategies {tuned_out.max() / 1e6:.2f} MB")
    print(f"simulated wall-clock: base {base.cost.wall_clock_seconds:.3f}s -> "
          f"with strategies {first.cost.wall_clock_seconds:.3f}s")


if __name__ == "__main__":
    main()
