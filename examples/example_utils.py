"""Shared helpers for the runnable examples.

Every example reads ``REPRO_EXAMPLE_SCALE`` (a float in ``(0, 1]``, default
``1``) through :func:`scaled` so the documented entry points can run in a
reduced-size smoke mode — ``tests/test_examples_smoke.py`` executes each one
with a small scale on every CI run, which keeps the examples from rotting.

Run any example full-size as ``PYTHONPATH=src python examples/<name>.py``, or
quickly as ``REPRO_EXAMPLE_SCALE=0.1 PYTHONPATH=src python examples/<name>.py``.
"""

from __future__ import annotations

import os


def example_scale() -> float:
    """The global size multiplier for example workloads (default 1.0)."""
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"REPRO_EXAMPLE_SCALE must be in (0, 1], got {scale}")
    return scale


def scaled(size: int, minimum: int = 1) -> int:
    """``size`` shrunk by ``REPRO_EXAMPLE_SCALE``, floored at ``minimum``."""
    return max(minimum, int(round(size * example_scale())))
