"""Quickstart: train GraphSAGE mini-batch, then serve full-graph inference.

This walks the paper's end-to-end pipeline at laptop scale:

1. load a dataset (an OGB-Products-like synthetic stand-in);
2. train a 2-layer GraphSAGE model on the labelled ~10% of nodes using k-hop
   neighbourhood sampling (the traditional mini-batch training phase);
3. export the trained model to a layer-wise signature (the deployment artefact);
4. open an :class:`InferenceSession` on the Pregel backend, ``prepare()`` the
   graph once (strategy plan + shadow rewrite + partition layout), then
   ``infer()`` repeatedly against the cached plan — every node gets a
   prediction, no sampling, bit-identical results at every run;
5. report accuracy and the simulated cluster cost via ``session.report()``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from example_utils import scaled
from repro.datasets import load_dataset
from repro.experiments.common import evaluate_scores
from repro.gnn import build_model, export_signature
from repro.inference import (InferenceConfig, InferenceSession, StrategyConfig,
                             available_backends)
from repro.training import TrainConfig, Trainer


def main() -> None:
    # 1. Dataset --------------------------------------------------------- #
    dataset = load_dataset("products", size="small", seed=0)
    graph = dataset.graph
    print(f"dataset: {dataset.name}  nodes={graph.num_nodes}  edges={graph.num_edges}  "
          f"features={dataset.feature_dim}  classes={dataset.num_classes}")

    # 2. Mini-batch training over sampled k-hop neighbourhoods ----------- #
    model = build_model("sage", dataset.feature_dim, hidden_dim=64,
                        num_classes=dataset.num_classes, num_layers=2, seed=0)
    trainer = Trainer(model, graph, TrainConfig(num_epochs=scaled(6), batch_size=64,
                                                fanout=10, seed=0))
    history = trainer.fit(dataset.train_nodes)
    print(f"training: final loss {history.losses[-1]:.3f}  "
          f"train metric {history.train_metric:.3f}")

    # 3. Export the trained model as a signature ------------------------- #
    signature = export_signature(model)
    print(f"signature: {len(signature.layers)} layers, "
          f"partial-gather legal = {[l.supports_partial_gather for l in signature.layers]}")

    # 4. Open a session: plan once, infer many --------------------------- #
    print(f"registered backends: {sorted(available_backends())}")
    config = InferenceConfig(backend="pregel", num_workers=8,
                             strategies=StrategyConfig(partial_gather=True))
    session = InferenceSession(signature, config)
    plan = session.prepare(graph)        # ingest + strategy plan + partition layout
    print(f"plan: {plan.describe()}")
    result = session.infer()             # executes against the cached plan

    # 5. Report ----------------------------------------------------------- #
    test_accuracy = evaluate_scores(dataset, result.scores, dataset.test_nodes)
    print(f"full-graph inference: test accuracy {test_accuracy:.3f} over "
          f"{graph.num_nodes} nodes in {result.num_supersteps} supersteps")
    print(f"simulated cost: wall-clock {result.cost.wall_clock_seconds:.3f}s, "
          f"{result.cost.cpu_minutes:.4f} cpu*min, "
          f"{result.cost.total_bytes / 1e6:.1f} MB moved")

    # Determinism check: repeated executions reuse the plan and are
    # bit-identical (the paper's consistency property).
    again = session.infer()
    assert np.array_equal(result.scores, again.scores)
    assert session.plan is plan          # no re-planning happened
    print("consistency: repeated run produced identical scores ✓")
    print(f"session report: {session.report().describe()}")


if __name__ == "__main__":
    main()
