"""Using the graph-processing substrate directly: PageRank on the Pregel engine.

InferTurbo's Pregel backend is a general "think-like-a-vertex" engine, not a
GNN-only shim.  This example runs classic PageRank as a per-vertex program
with a sum combiner, then reuses the same engine's metrics to show per-worker
message counts — the same counters the GNN inference experiments read.

Run:  python examples/pregel_pagerank.py
"""

from __future__ import annotations

import numpy as np

from example_utils import scaled
from repro.datasets import load_dataset
from repro.pregel import PregelEngine, SumCombiner, VertexProgram


class PageRank(VertexProgram):
    """Standard damped PageRank, fixed iteration count."""

    def __init__(self, num_iterations: int = 20, damping: float = 0.85) -> None:
        self.num_iterations = num_iterations
        self.damping = damping

    def initial_value(self, vertex_id: int) -> float:
        return 1.0

    def compute(self, vertex, messages) -> None:
        if vertex.superstep > 0:
            vertex.value = (1.0 - self.damping) + self.damping * sum(messages)
        if vertex.superstep < self.num_iterations:
            out_edges = vertex.out_edges()
            if out_edges.size:
                vertex.send_message_to_all_neighbors(vertex.value / out_edges.size)
        vertex.vote_to_halt()


def main() -> None:
    dataset = load_dataset("powerlaw", num_nodes=scaled(3_000, minimum=300),
                           avg_degree=8.0, skew="in", seed=2)
    graph = dataset.graph
    engine = PregelEngine(graph, num_workers=8, combiner=SumCombiner())
    result = engine.run(PageRank(num_iterations=20))

    ranks = np.array([result.vertex_values[node] for node in range(graph.num_nodes)])
    top = np.argsort(ranks)[::-1][:5]
    print(f"PageRank over {graph.num_nodes} nodes finished in {result.num_supersteps} supersteps")
    print("top-5 nodes by rank:")
    in_degrees = graph.in_degrees()
    for node in top:
        print(f"  node {node:>6}  rank {ranks[node]:.3f}  in-degree {in_degrees[node]}")

    records = result.metrics.per_instance("records_out")
    print(f"messages sent per worker (combiner on): "
          f"min {min(records.values()):.0f}  max {max(records.values()):.0f}")


if __name__ == "__main__":
    main()
