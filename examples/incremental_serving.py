"""Serving a drifting graph: deltas, staleness detection, incremental infer.

The production loop the paper targets: a full-graph GNN scoring job runs on a
schedule while the underlying graph keeps changing — user features refresh,
edges appear.  This example walks the whole contract:

1. ``prepare()`` once, ``infer()`` on every tick;
2. mutating the graph behind the session's back raises ``StalePlanError``
   (previously: silent stale scores);
3. the same change expressed as a ``GraphDelta`` patches the plan in place;
4. ``infer(mode="incremental")`` then reruns only the delta's k-hop reach —
   bit-identical to a full run, at a fraction of the cost.

Run with:  PYTHONPATH=src python examples/incremental_serving.py
"""

import time

import numpy as np

from example_utils import scaled
from repro.gnn.model import build_model
from repro.graph.generators import powerlaw_graph
from repro.inference import (
    GraphDelta,
    InferenceConfig,
    InferenceSession,
    StalePlanError,
    StrategyConfig,
)


def main() -> None:
    rng = np.random.default_rng(0)
    graph = powerlaw_graph(num_nodes=scaled(8000, minimum=500), avg_degree=5.0,
                           skew="out", feature_dim=16, num_classes=5, seed=11)
    model = build_model("gcn", graph.feature_dim, 32, 5, num_layers=2, seed=0)
    config = InferenceConfig(backend="pregel", num_workers=8,
                             strategies=StrategyConfig(partial_gather=True,
                                                       broadcast=True,
                                                       shadow_nodes=True))

    session = InferenceSession(model, config)
    session.prepare(graph)
    baseline = session.infer()
    print(f"tick 0 (full run):        {baseline.cost.wall_clock_seconds:.3f}s "
          f"simulated, {baseline.cost.total_bytes / 1e6:.1f} MB moved")

    # --- the footgun, now loud -------------------------------------------- #
    graph.node_features[123] += 1.0
    try:
        session.infer()
    except StalePlanError:
        print("out-of-band mutation detected: StalePlanError (no stale scores served)")
    graph.node_features[123] -= 1.0    # put it back (approximately is fine:
    session.prepare(graph)             # ... we re-plan to resync exactly)
    session.infer()

    # --- the supported path: describe the change as a delta ---------------- #
    dirty = rng.choice(graph.num_nodes, size=80, replace=False)
    delta = GraphDelta(node_ids=dirty,
                       node_features=rng.standard_normal((80, graph.feature_dim)))
    start = time.perf_counter()
    outcome = session.apply_delta(delta)
    refreshed = session.infer(mode="incremental")
    elapsed = time.perf_counter() - start
    print(f"tick 1 (delta of {dirty.size} rows, applied "
          f"{'in place' if outcome.in_place else 'via re-plan'}): "
          f"incremental infer in {elapsed:.3f}s wall, "
          f"{refreshed.cost.total_bytes / 1e6:.1f} MB moved")

    # --- proof: identical to planning from scratch ------------------------- #
    fresh = InferenceSession(build_model("gcn", graph.feature_dim, 32, 5,
                                         num_layers=2, seed=0), config)
    fresh.prepare(graph)
    full = fresh.infer()
    identical = np.array_equal(refreshed.scores, full.scores)
    print(f"incremental scores bit-identical to a fresh full run: {identical}")
    print(session.report().describe())


if __name__ == "__main__":
    main()
